"""Administrative machine churn: depart_machine / admit_machine.

Churn is the runtime counterpart of the campaign harness's dynamic-world
scenarios: machines leave and join the network at virtual times without
dying.  Departed ranks are parked (excluded from selection, still
releasable); admitted machines rejoin the candidate pool with the speed
epoch bumped so no stale selection survives.
"""

import pytest

from repro.cluster import uniform_network
from repro.core import NetworkModel
from repro.core.runtime import run_hmpi
from repro.hmpi import HMPI_Admit_machine, HMPI_Depart_machine
from repro.perfmodel.builder import MatrixModel
from repro.util.errors import HMPIStateError


def model_for(size):
    return MatrixModel([100.0] * size, [[0.0] * size for _ in range(size)])


class TestNetmodelAdmit:
    def test_unflags_and_bumps_epoch(self):
        nm = NetworkModel(uniform_network([100.0] * 3), [0, 1, 2])
        nm.mark_machine_dead(1)
        epoch = nm.speed_epoch
        nm.admit_machine(1)
        assert not nm.machine_dead(1)
        assert nm.speed_epoch == epoch + 1
        assert nm.alive_world_ranks() == [0, 1, 2]

    def test_admitting_an_alive_machine_is_a_no_op(self):
        nm = NetworkModel(uniform_network([100.0] * 3), [0, 1, 2])
        epoch = nm.speed_epoch
        nm.admit_machine(1)
        assert nm.speed_epoch == epoch

    def test_unknown_index_rejected(self):
        from repro.util.errors import HMPIError
        nm = NetworkModel(uniform_network([100.0] * 3), [0, 1, 2])
        with pytest.raises(HMPIError):
            nm.admit_machine(9)


class TestDepart:
    def test_departed_machine_is_excluded_from_selection(self):
        # Machine 3 is 10x faster than the rest: any sane selection takes
        # it — unless it has departed.
        cluster = uniform_network([100.0, 100.0, 100.0, 1000.0])

        def app(hmpi):
            if not hmpi.is_host():
                while True:
                    g = hmpi.group_create(None)
                    if g is None:
                        return None
                    if g.is_member:
                        hmpi.group_free(g)
            HMPI_Depart_machine(hmpi, 3)
            g = hmpi.group_create(lambda navail: model_for(2))
            members = [int(r) for r in g.world_ranks]
            hmpi.group_free(g)
            hmpi.release_free()
            return members

        res = run_hmpi(app, cluster)
        assert 3 not in res.results[0]

    def test_departed_ranks_leave_participants(self):
        cluster = uniform_network([100.0] * 4)

        def app(hmpi):
            if not hmpi.is_host():
                return hmpi.group_create(None)
            before = hmpi.state.participants()
            hmpi.depart_machine(2)
            after = hmpi.state.participants()
            hmpi.release_free()
            return before, after

        res = run_hmpi(app, cluster)
        before, after = res.results[0]
        assert 2 in before and 2 not in after

    def test_host_machine_cannot_depart(self):
        cluster = uniform_network([100.0] * 3)

        def app(hmpi):
            if not hmpi.is_host():
                return hmpi.group_create(None)
            with pytest.raises(HMPIStateError, match="host"):
                hmpi.depart_machine(0)
            hmpi.release_free()
            return "checked"

        assert run_hmpi(app, cluster).results[0] == "checked"

    def test_release_frees_parked_ranks_without_hanging(self):
        # The end-of-run handshake must reach departed (parked) ranks
        # too, or the run would never terminate.
        cluster = uniform_network([100.0] * 4)

        def app(hmpi):
            if not hmpi.is_host():
                return hmpi.group_create(None)
            hmpi.depart_machine(1)
            hmpi.depart_machine(2)
            hmpi.release_free()
            return "released"

        res = run_hmpi(app, cluster, timeout=30.0)
        assert res.results[0] == "released"
        assert all(r is None for r in res.results[1:])


class TestAdmit:
    def test_admit_restores_the_machine_to_selection(self):
        cluster = uniform_network([100.0, 100.0, 100.0, 1000.0])

        def app(hmpi):
            if not hmpi.is_host():
                while True:
                    g = hmpi.group_create(None)
                    if g is None:
                        return None
                    if g.is_member:
                        hmpi.group_free(g)
            hmpi.depart_machine(3)
            g = hmpi.group_create(lambda navail: model_for(2))
            without = [int(r) for r in g.world_ranks]
            hmpi.group_free(g)
            HMPI_Admit_machine(hmpi, 3)
            g = hmpi.group_create(lambda navail: model_for(2))
            with_back = [int(r) for r in g.world_ranks]
            hmpi.group_free(g)
            hmpi.release_free()
            return without, with_back

        res = run_hmpi(app, cluster)
        without, with_back = res.results[0]
        assert 3 not in without
        assert 3 in with_back  # the fast machine wins again once back

    def test_admit_bumps_epoch_in_the_runtime(self):
        cluster = uniform_network([100.0] * 3)

        def app(hmpi):
            if not hmpi.is_host():
                return hmpi.group_create(None)
            hmpi.depart_machine(1)
            e0 = hmpi.state.netmodel.speed_epoch
            hmpi.admit_machine(1)
            e1 = hmpi.state.netmodel.speed_epoch
            hmpi.release_free()
            return e1 > e0

        assert run_hmpi(app, cluster).results[0] is True

    def test_ft_dead_machine_cannot_be_readmitted(self):
        # An FT death is permanent; churn "join" must not resurrect it.
        cluster = uniform_network([100.0] * 3)

        def app(hmpi):
            if not hmpi.is_host():
                return hmpi.group_create(None)
            hmpi.mark_dead(2)
            with pytest.raises(HMPIStateError, match="failed"):
                hmpi.admit_machine(2)
            hmpi.release_free()
            return "checked"

        assert run_hmpi(app, cluster).results[0] == "checked"
