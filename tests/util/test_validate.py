"""Validation helper behaviour."""

import pytest

from repro.util.errors import ReproError
from repro.util.validate import (
    check_length,
    check_nonnegative,
    check_positive,
    check_rank,
    check_square_matrix_of,
    require,
)


class TestRequire:
    def test_passes_on_true(self):
        require(True, "never raised")

    def test_raises_default_exception(self):
        with pytest.raises(ReproError, match="bad thing"):
            require(False, "bad thing")

    def test_raises_custom_exception(self):
        with pytest.raises(ValueError):
            require(False, "nope", ValueError)


class TestCheckPositive:
    def test_returns_value(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(bad, "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-1e-9, "x")


class TestCheckRank:
    def test_valid_range(self):
        assert check_rank(0, 4) == 0
        assert check_rank(3, 4) == 3

    @pytest.mark.parametrize("bad", [-1, 4, 100])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_rank(bad, 4)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_rank(True, 4)

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            check_rank(1.0, 4)


class TestCheckLength:
    def test_passes(self):
        assert check_length([1, 2, 3], 3, "v") == [1, 2, 3]

    def test_fails(self):
        with pytest.raises(ValueError, match="length 2"):
            check_length([1], 2, "v")


class TestCheckSquareMatrix:
    def test_passes(self):
        mat = [[1, 2], [3, 4]]
        assert check_square_matrix_of(mat, 2, "m") is mat

    def test_wrong_rows(self):
        with pytest.raises(ValueError):
            check_square_matrix_of([[1, 2]], 2, "m")

    def test_ragged(self):
        with pytest.raises(ValueError, match="row 1"):
            check_square_matrix_of([[1, 2], [3]], 2, "m")
