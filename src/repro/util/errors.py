"""Exception hierarchy shared by every subsystem of the HMPI reproduction.

The hierarchy mirrors the layering of the library: the cluster simulator,
the MPI substrate, the performance-model language, and the HMPI runtime each
raise their own subclass of :class:`ReproError`, so callers can catch at the
granularity they need (``except MPIError`` for substrate problems, ``except
ReproError`` for anything raised by this package).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ClusterError",
    "MPIError",
    "MPICommError",
    "MPIGroupError",
    "MPITruncationError",
    "DeadlockError",
    "MachineFailure",
    "PMDLError",
    "PMDLSyntaxError",
    "PMDLSemanticError",
    "PMDLAnalysisError",
    "PMDLRuntimeError",
    "HMPIError",
    "HMPIStateError",
    "MappingError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ClusterError(ReproError):
    """Invalid cluster topology or machine/link configuration."""


class MPIError(ReproError):
    """Base class for errors raised by the simulated MPI substrate."""


class MPICommError(MPIError):
    """Invalid communicator usage (bad rank, freed comm, wrong context)."""


class MPIGroupError(MPIError):
    """Invalid group construction or accessor usage."""


class MPITruncationError(MPIError):
    """A receive buffer was too small for the matched message."""


class DeadlockError(MPIError):
    """The deadlock watchdog concluded no rank can make progress."""


class MachineFailure(MPIError):
    """Raised inside a rank whose machine failed (fault injection)."""

    def __init__(self, machine: str, vtime: float):
        super().__init__(f"machine {machine!r} failed at virtual time {vtime:.6f}")
        self.machine = machine
        self.vtime = vtime


class PMDLError(ReproError):
    """Base class for performance-model definition language errors."""


class PMDLSyntaxError(PMDLError):
    """Tokenizer/parser error, carrying source position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PMDLSemanticError(PMDLError):
    """Model is syntactically valid but semantically inconsistent."""


class PMDLAnalysisError(PMDLSemanticError):
    """The static analyzer proved a defect in the model.

    Carries the machine-readable :class:`~repro.perfmodel.diagnostics.Diagnostic`
    objects so tooling can report codes/lines without re-parsing the message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class PMDLRuntimeError(PMDLError):
    """Error while evaluating a compiled performance model."""


class HMPIError(ReproError):
    """Base class for HMPI runtime errors."""


class HMPIStateError(HMPIError):
    """An HMPI operation was called in the wrong runtime state."""


class MappingError(HMPIError):
    """No feasible mapping of abstract processors to machines exists."""
