"""Expression/statement evaluator semantics."""

import pytest

from repro.perfmodel.interp import (
    ActionVisitor,
    Environment,
    Interpreter,
    Ref,
    StructValue,
)
from repro.perfmodel.parser import parse, parse_expression
from repro.util.errors import PMDLRuntimeError


def ev(src, env=None, externals=None, structs=None):
    interp = Interpreter(structs or {}, externals or {})
    return interp.eval(parse_expression(src), env or Environment())


class RecordingVisitor(ActionVisitor):
    def __init__(self):
        self.events = []

    def compute(self, percent, coords):
        self.events.append(("C", percent, coords))

    def transfer(self, percent, src, dst):
        self.events.append(("T", percent, src, dst))


def run_scheme(body_src, params=None, externals=None, structs_src=""):
    src = f"""
    {structs_src}
    algorithm A(int p) {{
      coord I=p;
      node {{I>=0: bench*(1);}};
      scheme {{ {body_src} }};
    }}
    """
    items = parse(src)
    alg = items[-1]
    structs = {s.name: s for s in items[:-1]}
    interp = Interpreter(structs, externals or {})
    env = Environment(params or {"p": 3})
    visitor = RecordingVisitor()
    interp.exec_block(alg.scheme.body, env, visitor)
    return visitor.events


class TestArithmetic:
    def test_basics(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 - 4 - 3") == 3

    def test_exact_int_division_stays_int(self):
        v = ev("12 / 4")
        assert v == 3 and isinstance(v, int)

    def test_inexact_int_division_promotes(self):
        assert ev("100 / 54") == pytest.approx(100 / 54)

    def test_float_division(self):
        assert ev("5.0 / 2") == 2.5

    def test_division_by_zero(self):
        with pytest.raises(PMDLRuntimeError):
            ev("1 / 0")

    def test_c_modulo(self):
        assert ev("7 % 3") == 1
        assert ev("-7 % 3") == -1  # C: sign of dividend

    def test_modulo_requires_ints(self):
        with pytest.raises(PMDLRuntimeError):
            ev("7.5 % 2")

    def test_unary(self):
        assert ev("-5") == -5
        assert ev("!0") == 1
        assert ev("!7") == 0


class TestComparisonsAndLogic:
    def test_comparisons_yield_ints(self):
        assert ev("3 > 2") == 1
        assert ev("3 < 2") == 0
        assert ev("2 >= 2") == 1
        assert ev("1 != 2") == 1

    def test_short_circuit_and(self):
        # RHS would divide by zero; short circuit must skip it.
        assert ev("0 && (1 / 0)") == 0

    def test_short_circuit_or(self):
        assert ev("1 || (1 / 0)") == 1

    def test_ternary(self):
        assert ev("1 ? 10 : 20") == 10
        assert ev("0 ? 10 : 20") == 20


class TestNamesAndIndexing:
    def test_lookup(self):
        env = Environment({"x": 5})
        assert ev("x + 1", env) == 6

    def test_undefined(self):
        with pytest.raises(PMDLRuntimeError):
            ev("nope")

    def test_nested_indexing(self):
        import numpy as np

        env = Environment({"dep": np.array([[1, 2], [3, 4]])})
        assert ev("dep[1][0]", env) == 3

    def test_numpy_scalar_unwrapped_to_int(self):
        import numpy as np

        env = Environment({"d": np.array([10, 20])})
        v = ev("d[1] / d[0]", env)
        assert v == 2 and isinstance(v, int)

    def test_bad_index(self):
        env = Environment({"d": [1, 2]})
        with pytest.raises(PMDLRuntimeError):
            ev("d[5]", env)

    def test_sizeof(self):
        assert ev("sizeof(double)") == 8
        assert ev("3*sizeof(int)") == 12


class TestStructsAndRefs:
    def test_member_access(self):
        s = StructValue("P", ["I", "J"])
        s.set("I", 4)
        env = Environment({"Root": s})
        assert ev("Root.I", env) == 4

    def test_member_on_non_struct(self):
        env = Environment({"x": 3})
        with pytest.raises(PMDLRuntimeError):
            ev("x.I", env)

    def test_unknown_field(self):
        s = StructValue("P", ["I"])
        with pytest.raises(PMDLRuntimeError):
            s.get("Z")

    def test_ref_roundtrip(self):
        store = {"v": 1}
        ref = Ref(lambda: store["v"], lambda x: store.__setitem__("v", x))
        assert ref.get() == 1
        ref.set(9)
        assert store["v"] == 9


class TestSchemeExecution:
    def test_compute_action(self):
        events = run_scheme("100%%[0];")
        assert events == [("C", 100.0, (0,))]

    def test_transfer_action(self):
        events = run_scheme("25%%[0]->[2];")
        assert events == [("T", 25.0, (0,), (2,))]

    def test_par_loop_emits_per_iteration(self):
        events = run_scheme("par (int i = 0; i < p; i++) 100%%[i];")
        assert events == [("C", 100.0, (i,)) for i in range(3)]

    def test_for_loop_with_update_in_body(self):
        events = run_scheme(
            "par (int i = 0; i < p; ) { 100%%[i]; i += 2; }"
        )
        assert [e[2] for e in events] == [(0,), (2,)]

    def test_if_filters(self):
        events = run_scheme(
            "for (int i = 0; i < p; i++) if (i != 1) 100%%[i];"
        )
        assert [e[2] for e in events] == [(0,), (2,)]

    def test_postfix_increment_returns_old(self):
        events = run_scheme("int i = 5; 100%%[i++]; 100%%[i];")
        assert [e[2] for e in events] == [(5,), (6,)]

    def test_external_call_with_struct_out_param(self):
        def SetCoords(value, root):
            root.set("I", value * 2)

        events = run_scheme(
            "P Root; SetCoords(3, &Root); 100%%[Root.I];",
            externals={"SetCoords": SetCoords},
            structs_src="typedef struct {int I;} P;",
        )
        assert events == [("C", 100.0, (6,))]

    def test_scalar_ref_out_param(self):
        def Bump(ref):
            ref.set(ref.get() + 10)

        events = run_scheme(
            "int x = 1; Bump(&x); 100%%[x];",
            externals={"Bump": Bump},
        )
        assert events == [("C", 100.0, (11,))]

    def test_while_loop(self):
        events = run_scheme("int i = 0; while (i < 2) { 100%%[i]; i++; }")
        assert len(events) == 2

    def test_infinite_loop_detected(self):
        with pytest.raises(PMDLRuntimeError):
            run_scheme("for (;;) ;")

    def test_variable_scoping_inner_blocks(self):
        events = run_scheme(
            "int i = 1; { int i = 2; 100%%[i]; } 100%%[i];"
        )
        assert [e[2] for e in events] == [(2,), (1,)]

    def test_compound_assignment(self):
        events = run_scheme("int x = 4; x *= 3; 100%%[x];")
        assert events[0][2] == (12,)
