"""The batching planner: coalesce identical work before it hits a worker.

Selection results are pure functions of the (model digest, cluster
digest, shape digest) triple, so N queued jobs with equal triples need
exactly one selection — the planner groups them into one :class:`Batch`
and the executor fans the single cached mapping back out to every member
(members may still differ in tenant and ``iterations``; those are
applied per job, after the shared evaluation).

The server drains the queue once per *batch window* (a few
milliseconds): long enough that a burst of identical requests lands in
one batch, short enough to be invisible next to an evaluation.  Batches
preserve arrival order of their first member, so coalescing never
reorders unrelated tenants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .jobs import Job

__all__ = ["Batch", "BatchPlanner"]


@dataclass
class Batch:
    """Jobs that share one evaluation (equal batch keys)."""

    key: tuple
    jobs: list[Job] = field(default_factory=list)

    @property
    def representative(self) -> Job:
        return self.jobs[0]


class BatchPlanner:
    """Queue + grouping logic; owned by the server's event loop."""

    def __init__(self) -> None:
        self._pending: list[Job] = []
        self.jobs_in = 0
        self.batches_out = 0
        self.coalesced = 0

    def add(self, job: Job) -> None:
        self._pending.append(job)
        self.jobs_in += 1

    def __len__(self) -> int:
        return len(self._pending)

    def drain(self) -> list[Batch]:
        """Group everything pending into batches, in first-arrival order."""
        by_key: dict[tuple, Batch] = {}
        order: list[Batch] = []
        for job in self._pending:
            batch = by_key.get(job.request.batch_key)
            if batch is None:
                batch = Batch(key=job.request.batch_key)
                by_key[job.request.batch_key] = batch
                order.append(batch)
            batch.jobs.append(job)
        self._pending.clear()
        self.batches_out += len(order)
        self.coalesced += sum(len(b.jobs) - 1 for b in order)
        return order

    def stats_dict(self) -> dict[str, int]:
        return {
            "jobs_in": self.jobs_in,
            "batches_out": self.batches_out,
            "coalesced": self.coalesced,
            "pending": len(self._pending),
        }
