"""Pure request execution — the part of the server that computes.

:class:`Executor` turns a validated job request into its result dict.
It is transport-free and deterministic: the HTTP layer, the worker
processes, *and the differential tests* all call the same
:meth:`Executor.execute`, which is how the server guarantees a served
result is bitwise-identical to the direct in-process API — there is one
code path, not two kept in sync.

State an executor accumulates is pure cache, keyed by digests:

- compiled models via :func:`repro.perfmodel.compile_source_cached`
  (compile-by-digest memoisation);
- one :class:`WorldContext` per cluster digest — the ``NetworkModel``,
  a speed-epoch-keyed selection cache shared across tenants, and the
  engine's :class:`~repro.core.seleng.EvaluatorPool`;
- lowered communication nets per model digest (trace export).

Selection replicates :meth:`repro.core.runtime.HMPIRuntimeState.select`
exactly — same candidate order (all world ranks), same host pin
(``{model.parent_index(): HOST_RANK}``), same mapper resolution and
keyword threading — so the cached mapping equals what ``HMPI_Timeof`` /
``HMPI_Group_create`` compute inside a run.
"""

from __future__ import annotations

import json
import re
from collections import OrderedDict
from typing import Any

from ..core.mapper import _supports_backend, _supports_stats, resolve_mapper
from ..core.netmodel import NetworkModel
from ..core.runtime import HOST_RANK
from ..core.seleng import EvaluatorPool, SelectionStats, evaluate_mappings
from ..util.errors import OptionError, PMDLError, ReproError
from .protocol import PROTOCOL_VERSION, BadRequest, JobRequest

__all__ = ["Executor", "WorldContext", "stub_externals"]

#: PMDL keywords that look like calls to the externals regex.
_PMDL_KEYWORDS = frozenset({
    "algorithm", "coord", "node", "link", "parent", "scheme",
    "sizeof", "par", "for", "if", "while", "bench", "length",
})

# Stable stub per external name: compile-by-digest keys externals by
# (name, identity), so handing the same callable back for a name makes
# resubmitted sources cache hits instead of recompiles.
_STUBS: dict[str, Any] = {}


def stub_externals(source: str) -> dict[str, Any]:
    """Declare every called name in ``source`` as a no-op external.

    The server has no way to receive Python callables over the wire (by
    design — requests are data, not code), so models whose *volumes*
    depend on externals should inline them; schemes may still name them.
    """
    called = set(re.findall(r"\b([A-Za-z_]\w*)\s*\(", source))
    externals = {}
    for name in sorted(called - _PMDL_KEYWORDS):
        fn = _STUBS.get(name)
        if fn is None:
            fn = _STUBS[name] = (lambda *a: None)
        externals[name] = fn
    return externals


class WorldContext:
    """Everything the server knows about one cluster digest.

    The selection cache is shared across tenants and keyed by
    ``(model digest, shape digest, speed epoch)`` — the served analogue
    of the runtime's per-run cache, with digests standing in for object
    identity so it survives across requests and processes agree on keys.
    """

    CACHE_SIZE = 256

    def __init__(self, digest: str, cluster: Any):
        self.digest = digest
        self.cluster = cluster
        self.netmodel = NetworkModel(cluster, list(range(cluster.size)))
        self.pool = EvaluatorPool()
        self.cache: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def apply_speeds(self, speeds: list[float] | None) -> None:
        """Install request speed estimates (a served ``HMPI_Recon``).

        Only *changed* values bump the speed epoch: resubmitting the
        same speeds leaves the epoch — and therefore every cached
        selection for this world — intact.
        """
        if speeds is None:
            return
        if len(speeds) != self.cluster.size:
            raise BadRequest(
                f"'speeds' needs one entry per machine "
                f"({self.cluster.size}), got {len(speeds)}")
        for i, s in enumerate(speeds):
            if self.netmodel.speed_of_machine(i) != s:
                self.netmodel.update_speed(i, s)

    def select(self, model: Any, req: JobRequest,
               stats: SelectionStats) -> tuple[Any, str]:
        """The runtime's selection, cached by digest; returns (mapping, how)."""
        self.apply_speeds(req.speeds)
        key = (req.model_digest, req.shape_digest, self.netmodel.speed_epoch)
        mapping = self.cache.get(key)
        if mapping is not None:
            self.cache.move_to_end(key)
            self.hits += 1
            stats.cache_hits += 1
            return mapping, "hit"
        self.misses += 1
        stats.cache_misses += 1
        mapper = resolve_mapper(req.mapper)
        kwargs: dict[str, Any] = {}
        if _supports_stats(mapper):
            kwargs["stats"] = stats
        backend = req.timeof_backend
        if backend is not None and backend != "trace" and _supports_backend(mapper):
            kwargs["backend"] = backend
        candidates = list(range(self.netmodel.nprocs))
        fixed = {model.parent_index(): HOST_RANK}
        mapping = mapper.select(model, self.netmodel, candidates, fixed,
                                **kwargs)
        self.cache[key] = mapping
        while len(self.cache) > self.CACHE_SIZE:
            self.cache.popitem(last=False)
        return mapping, "miss"


class Executor:
    """Execute validated job requests against digest-keyed caches."""

    WORLD_CAPACITY = 32

    def __init__(self) -> None:
        self.worlds: OrderedDict[str, WorldContext] = OrderedDict()
        self.stats = SelectionStats()
        self._models: dict[tuple, Any] = {}
        self._nets: dict[str, Any] = {}
        self.jobs_executed = 0

    # -- building blocks ----------------------------------------------
    def world(self, req: JobRequest) -> WorldContext:
        digest = req.world_digest
        assert digest is not None
        ctx = self.worlds.get(digest)
        if ctx is None:
            ctx = WorldContext(digest, self._build_cluster(req.cluster))
            self.worlds[digest] = ctx
            while len(self.worlds) > self.WORLD_CAPACITY:
                self.worlds.popitem(last=False)
        else:
            self.worlds.move_to_end(digest)
        return ctx

    @staticmethod
    def _build_cluster(spec: Any) -> Any:
        from ..campaign.scenarios import build_cluster
        from ..cluster.serialize import cluster_from_dict
        from ..util.errors import CampaignError

        try:
            if isinstance(spec, dict) and "machines" in spec:
                return cluster_from_dict(spec)
            return build_cluster(spec)
        except (CampaignError, ReproError, ValueError, TypeError, KeyError) as exc:
            raise BadRequest(f"bad cluster spec: {exc}") from exc

    def model_for(self, req: JobRequest) -> Any:
        """Compile (memoised) and bind the request's model."""
        from ..perfmodel import compile_source_cached

        assert req.model is not None
        try:
            models = compile_source_cached(
                req.model, stub_externals(req.model))
        except PMDLError as exc:
            raise BadRequest(f"model does not compile: {exc}") from exc
        if req.algorithm is not None:
            pmodel = models.get(req.algorithm)
            if pmodel is None:
                raise BadRequest(
                    f"source defines no algorithm named {req.algorithm!r}; "
                    f"found {sorted(models)}")
        elif len(models) == 1:
            pmodel = next(iter(models.values()))
        else:
            raise BadRequest(
                f"source defines {len(models)} algorithms "
                f"{sorted(models)}; pass 'algorithm' to choose one")

        bind_key = (req.model_digest, req.algorithm,
                    None if req.params is None
                    else json.dumps(req.params, sort_keys=True))
        bound = self._models.get(bind_key)
        if bound is None:
            try:
                if req.params is None:
                    bound = pmodel.bind()
                elif isinstance(req.params, dict):
                    bound = pmodel.bind(**req.params)
                else:
                    bound = pmodel.bind(*req.params)
            except (PMDLError, TypeError) as exc:
                raise BadRequest(f"cannot bind model: {exc}") from exc
            self._models[bind_key] = bound
            while len(self._models) > 256:
                self._models.pop(next(iter(self._models)))
        return bound

    # -- operations ----------------------------------------------------
    def execute(self, req: JobRequest) -> dict[str, Any]:
        """Run one job; returns its JSON-safe result dict."""
        self.jobs_executed += 1
        if req.op == "timeof" or req.op == "group_create":
            return self._execute_selection(req)
        if req.op == "check":
            return self._execute_check(req)
        if req.op == "campaign_cell":
            return self._execute_campaign_cell(req)
        raise BadRequest(f"unknown op {req.op!r}")  # pragma: no cover

    def _execute_selection(self, req: JobRequest) -> dict[str, Any]:
        model = self.model_for(req)
        ctx = self.world(req)
        try:
            mapping, how = ctx.select(model, req, self.stats)
        except (OptionError, ReproError) as exc:
            raise BadRequest(f"selection failed: {exc}") from exc
        result: dict[str, Any] = {
            "op": req.op,
            "protocol": PROTOCOL_VERSION,
            "model_digest": req.model_digest,
            "cluster_digest": req.world_digest,
            "cache": how,
            "speed_epoch": ctx.netmodel.speed_epoch,
            "mapping": {
                "processes": list(mapping.processes),
                "machines": list(mapping.machines),
                "time": mapping.time,
            },
        }
        if req.op == "timeof":
            # Exactly HMPI.timeof: best mapping's time scaled by iterations.
            result["predicted_time"] = mapping.time * req.iterations
            result["iterations"] = req.iterations
        else:
            result["group_size"] = len(mapping.processes)
        return result

    def _execute_check(self, req: JobRequest) -> dict[str, Any]:
        from ..perfmodel import check_source

        assert req.model is not None
        report = check_source(
            req.model,
            target=req.algorithm or "<request>",
            net=req.net,
            externals=stub_externals(req.model),
        )
        return {
            "op": "check",
            "protocol": PROTOCOL_VERSION,
            "model_digest": req.model_digest,
            "report": report.to_dict(),
            "exit_code": report.exit_code(strict=req.strict),
        }

    def _execute_campaign_cell(self, req: JobRequest) -> dict[str, Any]:
        import numpy as np

        from ..campaign.config import CampaignConfig
        from ..campaign.runner import run_one
        from ..util.errors import CampaignError

        assert req.campaign is not None and req.cell is not None
        try:
            config = CampaignConfig(req.campaign)
        except CampaignError as exc:
            raise BadRequest(f"bad campaign config: {exc}") from exc
        specs = config.expand()
        if req.cell >= len(specs):
            raise BadRequest(
                f"cell {req.cell} out of range; campaign expands to "
                f"{len(specs)} cell(s)")
        spec = specs[req.cell]
        metrics = run_one(config, spec)
        clean = {k: (v.item() if isinstance(v, np.generic) else v)
                 for k, v in metrics.items()}
        return {
            "op": "campaign_cell",
            "protocol": PROTOCOL_VERSION,
            "campaign": config.name,
            "cell": spec.cell,
            "index": spec.index,
            "seed": spec.seed,
            "metrics": clean,
        }

    # -- trace export --------------------------------------------------
    def trace(self, req: JobRequest) -> dict[str, Any]:
        """Chrome-trace document of a selection job's predicted schedule."""
        from ..obs.netexport import net_chrome_trace
        from ..perfmodel.net import lower_model

        if req.op not in ("timeof", "group_create"):
            raise BadRequest(
                f"op {req.op!r} has no schedule to trace; "
                "traces exist for timeof and group_create jobs")
        model = self.model_for(req)
        ctx = self.world(req)
        mapping, _ = ctx.select(model, req, self.stats)
        assert req.model_digest is not None
        net = self._nets.get(req.model_digest)
        if net is None:
            try:
                net = lower_model(model)
            except (PMDLError, ReproError) as exc:
                raise BadRequest(f"model cannot lower to a net: {exc}") from exc
            self._nets[req.model_digest] = net
            while len(self._nets) > 64:
                self._nets.pop(next(iter(self._nets)))
        # Reprice the chosen mapping through the shared evaluator pool —
        # the engine's batch entry point — so the exported metadata
        # carries the backend's own makespan for the exact machines.
        times = evaluate_mappings(
            model, ctx.netmodel, [list(mapping.machines)],
            backend=req.timeof_backend, pool=ctx.pool,
        )
        return net_chrome_trace(
            model, ctx.netmodel, list(mapping.machines), net=net,
            metadata={
                "model_digest": req.model_digest,
                "cluster_digest": req.world_digest,
                "predicted_time": float(times[0]),
            },
        )

    # -- introspection -------------------------------------------------
    def stats_dict(self) -> dict[str, Any]:
        from ..perfmodel import compile_cache_stats

        return {
            "jobs_executed": self.jobs_executed,
            "worlds": len(self.worlds),
            "selection": self.stats.as_dict(),
            "selection_cache": {
                "hits": sum(w.hits for w in self.worlds.values()),
                "misses": sum(w.misses for w in self.worlds.values()),
            },
            "compile_cache": compile_cache_stats(),
            "evaluator_pools": {
                "hits": sum(w.pool.hits for w in self.worlds.values()),
                "misses": sum(w.pool.misses for w in self.worlds.values()),
            },
        }
