"""Static analyzer for PMDL performance models.

The paper's whole premise is that the model is trustworthy enough to drive
``HMPI_Timeof``/``HMPI_Group_create`` *without running the program* — so a
model with an out-of-range coordinate, a self-transfer, or an unreachable
``par`` branch silently produces wrong predictions and wrong process
selections.  This module proves or refutes such defects at compile time,
**without binding parameters**, by abstract interpretation of coordinate
expressions and loop bounds over an interval domain whose endpoints are
linear expressions in the (unknown) scalar parameters.

With ``coord I=p`` the analyzer knows ``I ∈ [0, p-1]`` even though ``p`` is
unbound; a transfer to ``[i+1]`` inside ``par (i = 0; i < p; i++)`` is then
provably able to reach ``p`` — out of range — unless guarded by
``if (i < p - 1)``, whose refinement restores ``i ∈ [0, p-2]``.  Anything
the analyzer cannot prove is kept silent: diagnostics fire only on
established facts, so clean models (the paper's EM3D and ParallelAxB) stay
clean.

A second, communication-structure pass builds the static transfer graph of
the ``scheme`` and flags processors that receive but never compute,
declared ``link`` rules the scheme never exercises (the symbolic
generalisation of the bound-model linter), and single-port serialization
hotspots — ``par``-driven fan-in/fan-out the estimator will price.

Entry points: :func:`analyze_algorithm` for a parsed AST,
:func:`check_source` for raw text (syntax and semantic failures are
reported as ``PM001``/``PM002`` diagnostics instead of exceptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..mpi.datatypes import sizeof
from ..util.errors import PMDLError, PMDLSemanticError, PMDLSyntaxError
from . import ast
from .diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    register_rule,
)
from .printer import format_coords as _fmt_coords
from .printer import format_expression

__all__ = ["analyze_algorithm", "check_source"]


# ----------------------------------------------------------------------
# rule catalogue (codes are stable; see docs/DIAGNOSTICS.md)
# ----------------------------------------------------------------------

PM001 = register_rule("PM001", "syntax-error", Severity.ERROR,
                      "source does not parse")
PM002 = register_rule("PM002", "semantic-error", Severity.ERROR,
                      "undefined names, arity mismatches, unknown struct fields")
PM010 = register_rule("PM010", "compute-coord-out-of-range", Severity.ERROR,
                      "compute action targets a coordinate outside the arrangement")
PM011 = register_rule("PM011", "transfer-coord-out-of-range", Severity.ERROR,
                      "transfer endpoint outside the arrangement")
PM012 = register_rule("PM012", "parent-coord-out-of-range", Severity.ERROR,
                      "parent coordinates outside the arrangement")
PM013 = register_rule("PM013", "link-coord-out-of-range", Severity.ERROR,
                      "link rule endpoint outside the arrangement")
PM014 = register_rule("PM014", "non-positive-extent", Severity.ERROR,
                      "coordinate or link-variable extent is provably < 1")
PM020 = register_rule("PM020", "self-transfer", Severity.ERROR,
                      "transfer whose source equals its destination on every path")
PM021 = register_rule("PM021", "self-link", Severity.WARNING,
                      "link rule declaring traffic from a processor to itself")
PM030 = register_rule("PM030", "dead-branch", Severity.WARNING,
                      "if condition is provably false; branch never taken")
PM031 = register_rule("PM031", "zero-trip-loop", Severity.WARNING,
                      "loop condition is false on entry; body never executes")
PM032 = register_rule("PM032", "dead-rule", Severity.WARNING,
                      "node/link rule condition matches no processor")
PM033 = register_rule("PM033", "non-terminating-loop", Severity.ERROR,
                      "loop provably never terminates")
PM034 = register_rule("PM034", "loop-direction", Severity.WARNING,
                      "loop update moves the variable away from its bound")
PM040 = register_rule("PM040", "unused-parameter", Severity.WARNING,
                      "algorithm parameter is never referenced")
PM041 = register_rule("PM041", "unused-coord", Severity.WARNING,
                      "coordinate variable unused by node and link rules")
PM042 = register_rule("PM042", "unused-link-var", Severity.WARNING,
                      "link-block variable unused by the link rules")
PM043 = register_rule("PM043", "unused-scheme-var", Severity.INFO,
                      "scheme variable declared but never referenced")
PM050 = register_rule("PM050", "division-by-zero", Severity.ERROR,
                      "division or modulo by a provably zero value")
PM060 = register_rule("PM060", "receive-without-compute", Severity.WARNING,
                      "processors receive data but never compute")
PM061 = register_rule("PM061", "unexercised-link", Severity.WARNING,
                      "declared link never exercised by the scheme")
PM062 = register_rule("PM062", "serialization-hotspot", Severity.INFO,
                      "par-driven fan-in/fan-out serializes at a single port")


# ----------------------------------------------------------------------
# linear expressions over unknown scalar parameters
# ----------------------------------------------------------------------

class Lin:
    """``const + Σ coeff·sym`` with symbolic (unbound) parameter names."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: dict[str, float] | None = None, const: float = 0.0):
        self.coeffs = {s: c for s, c in (coeffs or {}).items() if c != 0}
        self.const = float(const)

    @classmethod
    def of(cls, value: float) -> "Lin":
        return cls(None, value)

    @classmethod
    def sym(cls, name: str) -> "Lin":
        return cls({name: 1.0}, 0.0)

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def __add__(self, other: "Lin") -> "Lin":
        coeffs = dict(self.coeffs)
        for s, c in other.coeffs.items():
            coeffs[s] = coeffs.get(s, 0.0) + c
        return Lin(coeffs, self.const + other.const)

    def __sub__(self, other: "Lin") -> "Lin":
        return self + other.scale(-1.0)

    def scale(self, k: float) -> "Lin":
        return Lin({s: c * k for s, c in self.coeffs.items()}, self.const * k)

    def shift(self, k: float) -> "Lin":
        return Lin(self.coeffs, self.const + k)

    def diff_const(self, other: "Lin") -> float | None:
        """``self - other`` if it is a known constant, else None."""
        d = self - other
        return d.const if d.is_const else None

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{s}" for s, c in sorted(self.coeffs.items())]
        parts.append(f"{self.const:+g}")
        return "".join(parts)


class Ival:
    """Interval with optional :class:`Lin` endpoints (None = unbounded)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Lin | None, hi: Lin | None):
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls) -> "Ival":
        return cls(None, None)

    @classmethod
    def const(cls, value: float) -> "Ival":
        lin = Lin.of(value)
        return cls(lin, lin)

    @classmethod
    def point(cls, lin: Lin) -> "Ival":
        return cls(lin, lin)

    @property
    def is_point(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and (self.hi - self.lo).is_const
                and (self.hi - self.lo).const == 0)

    @property
    def const_value(self) -> float | None:
        """The single constant value of this interval, if it has one."""
        if (self.lo is not None and self.hi is not None
                and self.lo.is_const and self.hi.is_const
                and self.lo.const == self.hi.const):
            return self.lo.const
        return None

    def join(self, other: "Ival") -> "Ival":
        lo = _bound_min(self.lo, other.lo)
        hi = _bound_max(self.hi, other.hi)
        return Ival(lo, hi)

    def __repr__(self) -> str:
        lo = "-inf" if self.lo is None else repr(self.lo)
        hi = "+inf" if self.hi is None else repr(self.hi)
        return f"[{lo}, {hi}]"


def _bound_min(a: Lin | None, b: Lin | None) -> Lin | None:
    """Lower bound of a join: provable minimum, else unbounded."""
    if a is None or b is None:
        return None
    d = a.diff_const(b)
    if d is None:
        return None
    return a if d <= 0 else b


def _bound_max(a: Lin | None, b: Lin | None) -> Lin | None:
    if a is None or b is None:
        return None
    d = a.diff_const(b)
    if d is None:
        return None
    return a if d >= 0 else b


def _pick_tighter_hi(current: Lin, new: Lin) -> Lin:
    """Refinement: both are sound upper bounds; prefer the smaller (or the
    fresher one when they are incomparable)."""
    d = new.diff_const(current)
    if d is None:
        return new
    return new if d <= 0 else current


def _pick_tighter_lo(current: Lin, new: Lin) -> Lin:
    d = new.diff_const(current)
    if d is None:
        return new
    return new if d >= 0 else current


TOP = Ival.top()

# tri-state truth
TRUE, FALSE, UNKNOWN = 1, 0, -1


def _ival_truth(v: Ival) -> int:
    """Is the value nonzero?  (C truthiness over an interval.)"""
    if v.const_value == 0:
        return FALSE
    if v.lo is not None and v.lo.is_const and v.lo.const > 0:
        return TRUE
    if v.hi is not None and v.hi.is_const and v.hi.const < 0:
        return TRUE
    # nonzero is also provable for symbolic intervals strictly above zero
    # only when the bound is constant; symbolic bounds stay unknown.
    return UNKNOWN


def _cmp_truth(op: str, a: Ival, b: Ival) -> int:
    """Evaluate ``a op b`` to a tri-state truth value."""
    def lt(x: Lin | None, y: Lin | None) -> bool:  # provably x < y
        if x is None or y is None:
            return False
        d = x.diff_const(y)
        return d is not None and d < 0

    def le(x: Lin | None, y: Lin | None) -> bool:  # provably x <= y
        if x is None or y is None:
            return False
        d = x.diff_const(y)
        return d is not None and d <= 0

    if op == "<":
        if lt(a.hi, b.lo):
            return TRUE
        if le(b.hi, a.lo):
            return FALSE
        return UNKNOWN
    if op == "<=":
        if le(a.hi, b.lo):
            return TRUE
        if lt(b.hi, a.lo):
            return FALSE
        return UNKNOWN
    if op == ">":
        return _cmp_truth("<", b, a)
    if op == ">=":
        return _cmp_truth("<=", b, a)
    if op == "==":
        if (a.is_point and b.is_point and a.lo is not None and b.lo is not None
                and a.lo.diff_const(b.lo) == 0):
            return TRUE
        if lt(a.hi, b.lo) or lt(b.hi, a.lo):
            return FALSE
        return UNKNOWN
    if op == "!=":
        t = _cmp_truth("==", a, b)
        return UNKNOWN if t == UNKNOWN else (FALSE if t == TRUE else TRUE)
    return UNKNOWN


def _truth_to_ival(t: int) -> Ival:
    if t == TRUE:
        return Ival.const(1)
    if t == FALSE:
        return Ival.const(0)
    return Ival(Lin.of(0), Lin.of(1))


# ----------------------------------------------------------------------
# abstract environment
# ----------------------------------------------------------------------

class AbsEnv:
    """Scoped map from variable keys to intervals.

    Keys are plain identifiers (``"i"``) or struct-member paths
    (``"Root.I"``).  Lookup of an unknown key yields TOP — array elements
    and external-call results are never tracked.
    """

    def __init__(self, base: dict[str, Ival] | None = None):
        self.frames: list[dict[str, Ival]] = [dict(base or {})]

    def push(self) -> None:
        self.frames.append({})

    def pop(self) -> None:
        self.frames.pop()

    def declare(self, key: str, value: Ival) -> None:
        self.frames[-1][key] = value

    def assign(self, key: str, value: Ival) -> None:
        for frame in reversed(self.frames):
            if key in frame:
                frame[key] = value
                return
        self.frames[-1][key] = value

    def lookup(self, key: str) -> Ival:
        for frame in reversed(self.frames):
            if key in frame:
                return frame[key]
        return TOP

    def __contains__(self, key: str) -> bool:
        return any(key in frame for frame in self.frames)

    def copy(self) -> "AbsEnv":
        clone = AbsEnv()
        clone.frames = [dict(frame) for frame in self.frames]
        return clone

    def merge(self, other: "AbsEnv") -> None:
        """Join ``other`` into self frame-by-frame (same block structure)."""
        for mine, theirs in zip(self.frames, other.frames):
            for key in set(mine) | set(theirs):
                a = mine.get(key, TOP)
                b = theirs.get(key, TOP)
                mine[key] = a.join(b)


def _key_of(expr: ast.Expr) -> str | None:
    """Stable key for trackable lvalues: names and one-level members."""
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Member) and isinstance(expr.base, ast.Name):
        return f"{expr.base.ident}.{expr.name}"
    return None


def _keys_in(expr: ast.Expr) -> set[str]:
    """Every trackable variable key occurring in an expression."""
    keys: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            keys.add(node.ident)
        elif isinstance(node, ast.Member) and isinstance(node.base, ast.Name):
            keys.add(f"{node.base.ident}.{node.name}")
    return keys


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------

@dataclass
class _ParFrame:
    """An enclosing ``par`` loop during scheme traversal."""
    var: str
    line: int


@dataclass
class _Action:
    """A recorded scheme action for the communication-structure pass."""
    line: int
    region: list[Ival]                     # compute coords or transfer dst
    src_region: list[Ival] | None = None   # transfers only
    par_vars: list[_ParFrame] = dataclass_field(default_factory=list)
    src_keys: set[str] = dataclass_field(default_factory=set)
    dst_keys: set[str] = dataclass_field(default_factory=set)


class _Analyzer:
    def __init__(self, alg: ast.Algorithm, structs: dict[str, ast.StructDef]):
        self.alg = alg
        self.structs = structs
        self.diags: list[Diagnostic] = []
        # abstract parameter environment: scalar params are exact symbols
        self.params: dict[str, Ival] = {}
        for p in alg.params:
            if not p.dims:
                self.params[p.name] = Ival.point(Lin.sym(p.name))
        self.extents: list[Ival] = []
        self.coord_names = [c.name for c in alg.coords]
        # struct-typed scheme variables (name -> StructDef), for &x havoc
        self.struct_vars: dict[str, ast.StructDef] = {}
        # comm-structure records
        self.computes: list[_Action] = []
        self.transfers: list[_Action] = []
        self.link_regions: list[tuple[ast.LinkRule, list[Ival], list[Ival]]] = []
        self.par_stack: list[_ParFrame] = []

    def emit(self, diag: Diagnostic) -> None:
        self.diags.append(diag)

    # ------------------------------------------------------------------
    # abstract expression evaluation
    # ------------------------------------------------------------------
    def eval(self, expr: ast.Expr, env: AbsEnv) -> Ival:
        if isinstance(expr, ast.IntLit):
            return Ival.const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return Ival.const(expr.value)
        if isinstance(expr, ast.Sizeof):
            try:
                return Ival.const(sizeof(expr.type_name))
            except Exception:
                return TOP
        if isinstance(expr, ast.Name):
            return env.lookup(expr.ident)
        if isinstance(expr, ast.Member):
            key = _key_of(expr)
            if key is not None:
                return env.lookup(key)
            self.eval(expr.base, env)
            return TOP
        if isinstance(expr, ast.Index):
            self.eval(expr.base, env)
            self.eval(expr.index, env)
            return TOP
        if isinstance(expr, ast.Unary):
            v = self.eval(expr.operand, env)
            if expr.op == "-":
                return Ival(None if v.hi is None else v.hi.scale(-1),
                            None if v.lo is None else v.lo.scale(-1))
            if expr.op == "+":
                return v
            if expr.op == "!":
                t = _ival_truth(v)
                return _truth_to_ival(UNKNOWN if t == UNKNOWN
                                      else (FALSE if t == TRUE else TRUE))
            return TOP
        if isinstance(expr, ast.AddrOf):
            self.eval(expr.operand, env)
            return TOP
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Conditional):
            t = self.truth(expr.cond, env)
            if t == TRUE:
                return self.eval(expr.then, env)
            if t == FALSE:
                return self.eval(expr.otherwise, env)
            return self.eval(expr.then, env).join(self.eval(expr.otherwise, env))
        if isinstance(expr, ast.Assign):
            value = self.eval(expr.value, env)
            if expr.op != "=":
                current = self.eval(expr.target, env)
                value = self._arith(expr.op[0], current, value, expr)
            key = _key_of(expr.target)
            if key is not None:
                env.assign(key, value)
            return value
        if isinstance(expr, ast.IncDec):
            old = self.eval(expr.target, env)
            step = 1 if expr.op == "++" else -1
            new = Ival(None if old.lo is None else old.lo.shift(step),
                       None if old.hi is None else old.hi.shift(step))
            key = _key_of(expr.target)
            if key is not None:
                env.assign(key, new)
            return old
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self.eval(arg, env)
                if isinstance(arg, ast.AddrOf):
                    self._havoc_lvalue(arg.operand, env)
            return TOP
        return TOP

    def _havoc_lvalue(self, target: ast.Expr, env: AbsEnv) -> None:
        """An external call may write through ``&target``: forget its value."""
        if isinstance(target, ast.Name) and target.ident in self.struct_vars:
            for f in self.struct_vars[target.ident].fields:
                env.assign(f"{target.ident}.{f.name}", TOP)
            return
        key = _key_of(target)
        if key is not None:
            env.assign(key, TOP)

    def _eval_binary(self, expr: ast.Binary, env: AbsEnv) -> Ival:
        op = expr.op
        if op == "&&":
            lt = self.truth(expr.left, env)
            rt = self.truth(expr.right, env)
            if lt == FALSE or rt == FALSE:
                return Ival.const(0)
            if lt == TRUE and rt == TRUE:
                return Ival.const(1)
            return _truth_to_ival(UNKNOWN)
        if op == "||":
            lt = self.truth(expr.left, env)
            rt = self.truth(expr.right, env)
            if lt == TRUE or rt == TRUE:
                return Ival.const(1)
            if lt == FALSE and rt == FALSE:
                return Ival.const(0)
            return _truth_to_ival(UNKNOWN)
        a = self.eval(expr.left, env)
        b = self.eval(expr.right, env)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return _truth_to_ival(_cmp_truth(op, a, b))
        return self._arith(op, a, b, expr)

    def _arith(self, op: str, a: Ival, b: Ival, where: ast.Node) -> Ival:
        if op == "+":
            return Ival(None if a.lo is None or b.lo is None else a.lo + b.lo,
                        None if a.hi is None or b.hi is None else a.hi + b.hi)
        if op == "-":
            return Ival(None if a.lo is None or b.hi is None else a.lo - b.hi,
                        None if a.hi is None or b.lo is None else a.hi - b.lo)
        if op == "*":
            ka = a.const_value
            kb = b.const_value
            if ka is not None:
                return self._scale(b, ka)
            if kb is not None:
                return self._scale(a, kb)
            return TOP
        if op in ("/", "%"):
            if b.const_value == 0:
                self.emit(PM050.at(
                    where,
                    f"{'division' if op == '/' else 'modulo'} by zero: the "
                    f"denominator is provably 0",
                ))
                return TOP
            ka = a.const_value
            kb = b.const_value
            if ka is not None and kb is not None and kb != 0:
                if op == "/":
                    return Ival.const(ka / kb)
                if float(ka).is_integer() and float(kb).is_integer():
                    q = int(abs(ka) // abs(kb))
                    if (ka >= 0) != (kb >= 0):
                        q = -q
                    return Ival.const(ka - q * kb)
            return TOP
        return TOP

    @staticmethod
    def _scale(v: Ival, k: float) -> Ival:
        lo = None if v.lo is None else v.lo.scale(k)
        hi = None if v.hi is None else v.hi.scale(k)
        if k < 0:
            lo, hi = hi, lo
        return Ival(lo, hi)

    def truth(self, expr: ast.Expr, env: AbsEnv) -> int:
        return _ival_truth(self.eval(expr, env))

    # ------------------------------------------------------------------
    # condition refinement (assume cond holds, integer variables)
    # ------------------------------------------------------------------
    def refine(self, cond: ast.Expr, env: AbsEnv) -> None:
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                self.refine(cond.left, env)
                self.refine(cond.right, env)
                return
            if cond.op in ("<", "<=", ">", ">=", "=="):
                self._refine_cmp(cond.op, cond.left, cond.right, env)

    def _refine_cmp(self, op: str, left: ast.Expr, right: ast.Expr,
                    env: AbsEnv) -> None:
        lkey = _key_of(left)
        rkey = _key_of(right)
        if lkey is not None:
            bound = self.eval(right, env)
            self._apply_bound(lkey, op, bound, env)
        if rkey is not None:
            mirrored = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}[op]
            bound = self.eval(left, env)
            self._apply_bound(rkey, mirrored, bound, env)

    def _apply_bound(self, key: str, op: str, bound: Ival, env: AbsEnv) -> None:
        current = env.lookup(key)
        lo, hi = current.lo, current.hi
        if op in ("<", "<=") and bound.hi is not None:
            new_hi = bound.hi if op == "<=" else bound.hi.shift(-1)
            hi = new_hi if hi is None else _pick_tighter_hi(hi, new_hi)
        elif op in (">", ">=") and bound.lo is not None:
            new_lo = bound.lo if op == ">=" else bound.lo.shift(1)
            lo = new_lo if lo is None else _pick_tighter_lo(lo, new_lo)
        elif op == "==":
            if bound.hi is not None:
                hi = bound.hi if hi is None else _pick_tighter_hi(hi, bound.hi)
            if bound.lo is not None:
                lo = bound.lo if lo is None else _pick_tighter_lo(lo, bound.lo)
        env.assign(key, Ival(lo, hi))

    # ------------------------------------------------------------------
    # top-level passes
    # ------------------------------------------------------------------
    def run(self) -> list[Diagnostic]:
        alg = self.alg
        self._check_extents()
        self._check_rules()
        self._check_parent()
        self._check_unused()
        if alg.scheme is not None:
            self._run_scheme(alg.scheme)
            self._comm_structure()
        self.diags.sort(key=lambda d: (d.line, d.code, d.message))
        return self.diags

    def _check_extents(self) -> None:
        env = AbsEnv(self.params)
        for coord in self.alg.coords:
            ext = self.eval(coord.extent, env)
            if ext.hi is not None and ext.hi.is_const and ext.hi.const < 1:
                self.emit(PM014.at(
                    coord,
                    f"coordinate {coord.name!r} has extent "
                    f"{format_expression(coord.extent)} which is provably < 1",
                ))
            self.extents.append(ext)
        self.link_extents: list[Ival] = []
        for lv in self.alg.link_vars:
            ext = self.eval(lv.extent, env)
            if ext.hi is not None and ext.hi.is_const and ext.hi.const < 1:
                self.emit(PM014.at(
                    lv,
                    f"link variable {lv.name!r} has extent "
                    f"{format_expression(lv.extent)} which is provably < 1",
                ))
            self.link_extents.append(ext)

    def _coord_env(self) -> AbsEnv:
        """Parameters plus every coordinate ranging over [0, extent-1]."""
        env = AbsEnv(self.params)
        for name, ext in zip(self.coord_names, self.extents):
            hi = None if ext.lo is None else ext.lo.shift(-1)
            env.declare(name, Ival(Lin.of(0), hi))
        return env

    def _check_rules(self) -> None:
        for rule_ in self.alg.node_rules:
            env = self._coord_env()
            t = self.truth(rule_.condition, env)
            if t == FALSE:
                self.emit(PM032.at(
                    rule_,
                    f"node rule condition "
                    f"{format_expression(rule_.condition)} is provably false; "
                    f"the rule matches no processor",
                ))
                continue
            self.refine(rule_.condition, env)
            self.eval(rule_.volume, env)  # division-by-zero detection

        for rule_ in self.alg.link_rules:
            env = self._coord_env()
            for lv, ext in zip(self.alg.link_vars, self.link_extents):
                hi = None if ext.lo is None else ext.lo.shift(-1)
                env.declare(lv.name, Ival(Lin.of(0), hi))
            t = self.truth(rule_.condition, env)
            if t == FALSE:
                self.emit(PM032.at(
                    rule_,
                    f"link rule condition "
                    f"{format_expression(rule_.condition)} is provably false; "
                    f"the rule declares no traffic",
                ))
                continue
            self.refine(rule_.condition, env)
            self.eval(rule_.volume, env)
            src = [self.eval(c, env) for c in rule_.src]
            dst = [self.eval(c, env) for c in rule_.dst]
            self._range_check(rule_, PM013, "link source", rule_.src, src)
            self._range_check(rule_, PM013, "link destination", rule_.dst, dst)
            if len(rule_.src) == len(rule_.dst) and all(
                format_expression(s) == format_expression(d)
                for s, d in zip(rule_.src, rule_.dst)
            ):
                self.emit(PM021.at(
                    rule_,
                    f"link rule declares a self-transfer: source and "
                    f"destination are both {_fmt_coords(rule_.src)}",
                ))
            self.link_regions.append((rule_, src, dst))

    def _check_parent(self) -> None:
        parent = self.alg.parent
        if parent is None or len(parent.coords) != len(self.extents):
            return
        env = AbsEnv(self.params)
        vals = [self.eval(c, env) for c in parent.coords]
        self._range_check(parent, PM012, "parent", parent.coords, vals)

    def _range_check(self, where: ast.Node, rule_, what: str,
                     exprs: list[ast.Expr], vals: list[Ival]) -> None:
        """Prove a coordinate tuple out of range (error) or escapable (warning)."""
        for axis, (expr, val) in enumerate(zip(exprs, vals)):
            if axis >= len(self.extents):
                return
            ext = self.extents[axis]
            cname = self.coord_names[axis]
            shown = format_expression(expr)
            # provably >= extent for every possible extent value
            if (val.lo is not None and ext.hi is not None
                    and (d := val.lo.diff_const(ext.hi)) is not None and d >= 0):
                self.emit(rule_.at(
                    where,
                    f"{what} coordinate {shown} is always out of range: "
                    f"it is >= the extent of {cname}",
                ))
                continue
            # provably negative for every execution
            if val.hi is not None and val.hi.is_const and val.hi.const < 0:
                self.emit(rule_.at(
                    where,
                    f"{what} coordinate {shown} is always negative",
                ))
                continue
            # can escape the range for some execution (finite proofs only)
            if (val.hi is not None and ext.lo is not None
                    and (d := val.hi.diff_const(ext.lo)) is not None and d >= 0):
                self.emit(rule_.at(
                    where,
                    f"{what} coordinate {shown} can reach the extent of "
                    f"{cname}: guard it or shrink the loop bound",
                    severity=Severity.WARNING,
                ))
                continue
            if val.lo is not None and val.lo.is_const and val.lo.const < 0:
                self.emit(rule_.at(
                    where,
                    f"{what} coordinate {shown} can be negative",
                    severity=Severity.WARNING,
                ))

    # ------------------------------------------------------------------
    # unused declarations
    # ------------------------------------------------------------------
    def _collect_names(self, *roots) -> set[str]:
        used: set[str] = set()
        for root in roots:
            if root is None:
                continue
            for node in ast.walk(root):
                if isinstance(node, ast.Name):
                    used.add(node.ident)
        return used

    def _check_unused(self) -> None:
        alg = self.alg
        rule_exprs: list[ast.Node] = []
        for r in alg.node_rules:
            rule_exprs += [r.condition, r.volume]
        for r in alg.link_rules:
            rule_exprs += [r.condition, r.volume, *r.src, *r.dst]

        everywhere = self._collect_names(
            *(d for p in alg.params for d in p.dims),
            *(c.extent for c in alg.coords),
            *(lv.extent for lv in alg.link_vars),
            *rule_exprs,
            *(alg.parent.coords if alg.parent is not None else []),
            alg.scheme,
        )
        for p in alg.params:
            if p.name not in everywhere:
                self.emit(PM040.at(p, f"parameter {p.name!r} is never used"))

        in_rules = self._collect_names(*rule_exprs)
        for c in alg.coords:
            if c.name not in in_rules:
                self.emit(PM041.at(
                    c, f"coordinate {c.name!r} is used by no node or link rule"))
        link_rule_names = self._collect_names(
            *(x for r in alg.link_rules
              for x in (r.condition, r.volume, *r.src, *r.dst)))
        for lv in alg.link_vars:
            if lv.name not in link_rule_names:
                self.emit(PM042.at(
                    lv, f"link variable {lv.name!r} is used by no link rule"))

        if alg.scheme is not None:
            declared: list[tuple[str, ast.Node]] = []
            for node in ast.walk(alg.scheme):
                if isinstance(node, ast.VarDecl):
                    for d in node.declarators:
                        declared.append((d.name, node))
            used: set[str] = set()
            for node in ast.walk(alg.scheme):
                if isinstance(node, ast.Name):
                    used.add(node.ident)
                elif isinstance(node, ast.Call):
                    used.add(node.name)
            for name, where in declared:
                if name not in used:
                    self.emit(PM043.at(
                        where, f"scheme variable {name!r} is never used"))

    # ------------------------------------------------------------------
    # scheme traversal
    # ------------------------------------------------------------------
    def _run_scheme(self, scheme: ast.Scheme) -> None:
        env = AbsEnv(self.params)
        self._exec_block(scheme.body, env)

    def _exec_block(self, stmts: list[ast.Stmt], env: AbsEnv) -> None:
        env.push()
        try:
            for stmt in stmts:
                self._exec(stmt, env)
        finally:
            env.pop()

    def _exec(self, stmt: ast.Stmt, env: AbsEnv) -> None:
        if isinstance(stmt, ast.EmptyStmt):
            return
        if isinstance(stmt, ast.VarDecl):
            struct_def = self.structs.get(stmt.type_name)
            for d in stmt.declarators:
                if struct_def is not None:
                    self.struct_vars[d.name] = struct_def
                    for f in struct_def.fields:
                        env.declare(f"{d.name}.{f.name}", Ival.const(0))
                else:
                    value = (self.eval(d.init, env) if d.init is not None
                             else Ival.const(0))
                    env.declare(d.name, value)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, env)
            return
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt.body, env)
            return
        if isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
            return
        if isinstance(stmt, (ast.For, ast.Par)):
            self._exec_loop(stmt, env, is_par=isinstance(stmt, ast.Par))
            return
        if isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
            return
        if isinstance(stmt, ast.ComputeAction):
            self.eval(stmt.percent, env)
            coords = [self.eval(c, env) for c in stmt.coords]
            if len(coords) == len(self.extents):
                self._range_check(stmt, PM010, "compute", stmt.coords, coords)
                self.computes.append(_Action(stmt.line, coords))
            return
        if isinstance(stmt, ast.TransferAction):
            self.eval(stmt.percent, env)
            src = [self.eval(c, env) for c in stmt.src]
            dst = [self.eval(c, env) for c in stmt.dst]
            if len(src) == len(self.extents) and len(dst) == len(self.extents):
                self._range_check(stmt, PM011, "transfer source", stmt.src, src)
                self._range_check(stmt, PM011, "transfer destination",
                                  stmt.dst, dst)
                if all(format_expression(s) == format_expression(d)
                       for s, d in zip(stmt.src, stmt.dst)):
                    self.emit(PM020.at(
                        stmt,
                        f"transfer from {_fmt_coords(stmt.src)} to itself: "
                        f"source and destination coincide on every path",
                    ))
                self.transfers.append(_Action(
                    stmt.line, dst, src_region=src,
                    par_vars=list(self.par_stack),
                    src_keys=set().union(*(_keys_in(c) for c in stmt.src)),
                    dst_keys=set().union(*(_keys_in(c) for c in stmt.dst)),
                ))
            return

    def _exec_if(self, stmt: ast.If, env: AbsEnv) -> None:
        t = self.truth(stmt.cond, env)
        if t == FALSE:
            self.emit(PM030.at(
                stmt,
                f"condition {format_expression(stmt.cond)} is provably "
                f"false; the branch is never taken",
            ))
            if stmt.otherwise is not None:
                self._exec(stmt.otherwise, env)
            return
        if t == TRUE:
            self._exec(stmt.then, env)
            return
        then_env = env.copy()
        self.refine(stmt.cond, then_env)
        self._exec(stmt.then, then_env)
        if stmt.otherwise is not None:
            else_env = env.copy()
            self._exec(stmt.otherwise, else_env)
            then_env.merge(else_env)
        else:
            then_env.merge(env)
        env.frames = then_env.frames

    # -- loops ----------------------------------------------------------
    def _written_keys(self, *nodes) -> set[str]:
        keys: set[str] = set()
        for root in nodes:
            if root is None:
                continue
            for node in ast.walk(root):
                if isinstance(node, ast.Assign):
                    key = _key_of(node.target)
                    if key is not None:
                        keys.add(key)
                elif isinstance(node, ast.IncDec):
                    key = _key_of(node.target)
                    if key is not None:
                        keys.add(key)
                elif isinstance(node, ast.AddrOf):
                    target = node.operand
                    if (isinstance(target, ast.Name)
                            and target.ident in self.struct_vars):
                        sd = self.struct_vars[target.ident]
                        keys.update(f"{target.ident}.{f.name}"
                                    for f in sd.fields)
                    else:
                        key = _key_of(target)
                        if key is not None:
                            keys.add(key)
        return keys

    @staticmethod
    def _const_step(update: ast.Expr | None, var: str) -> float | None:
        """Constant per-iteration increment of ``var``, if recognisable."""
        if update is None:
            return None
        if isinstance(update, ast.IncDec) and _key_of(update.target) == var:
            return 1.0 if update.op == "++" else -1.0
        if (isinstance(update, ast.Assign) and _key_of(update.target) == var
                and isinstance(update.value, ast.IntLit)):
            if update.op == "+=":
                return float(update.value.value)
            if update.op == "-=":
                return -float(update.value.value)
        return None

    def _exec_loop(self, stmt: ast.For | ast.Par, env: AbsEnv,
                   is_par: bool) -> None:
        kind = "par" if is_par else "for"
        env.push()
        try:
            init_keys: set[str] = set()
            if isinstance(stmt.init, ast.VarDecl):
                self._exec(stmt.init, env)
                init_keys = {d.name for d in stmt.init.declarators}
            elif stmt.init is not None:
                self.eval(stmt.init, env)
                init_keys = self._written_keys(stmt.init)

            cond_keys = _keys_in(stmt.cond) if stmt.cond is not None else set()
            update_keys = self._written_keys(stmt.update)
            body_keys = self._written_keys(stmt.body)
            written = update_keys | body_keys
            loopvar = next(iter(sorted((init_keys | written) & cond_keys)), None)

            # termination
            if stmt.cond is None and stmt.update is None and not body_keys:
                self.emit(PM033.at(
                    stmt,
                    f"{kind} loop has no condition, no update and a body "
                    f"that changes nothing: it never terminates",
                ))

            entry = self.truth(stmt.cond, env) if stmt.cond is not None else TRUE
            if entry == FALSE:
                self.emit(PM031.at(
                    stmt,
                    f"{kind} loop condition "
                    f"{format_expression(stmt.cond)} is false on entry: "
                    f"the body never executes",
                ))
                return  # dead body: do not analyze or record actions

            init_ival = env.lookup(loopvar) if loopvar is not None else TOP
            step = (self._const_step(stmt.update, loopvar)
                    if loopvar is not None else None)
            if (step is not None and stmt.cond is not None
                    and loopvar is not None
                    and loopvar not in body_keys):
                wrong = self._direction_mismatch(stmt.cond, loopvar, step)
                if wrong:
                    if entry == TRUE:
                        self.emit(PM033.at(
                            stmt,
                            f"{kind} loop update moves {loopvar!r} away from "
                            f"its bound and the condition holds on entry: "
                            f"the loop never terminates",
                        ))
                    else:
                        self.emit(PM034.at(
                            stmt,
                            f"{kind} loop update moves {loopvar!r} away from "
                            f"its bound",
                        ))

            # abstract body state: forget everything the body can change,
            # then re-derive the loop variable's range from init + condition
            for key in written | ({loopvar} if loopvar else set()):
                env.assign(key, TOP)
            if loopvar is not None:
                if step is not None and step > 0 and loopvar not in body_keys:
                    env.assign(loopvar, Ival(init_ival.lo, None))
                elif step is not None and step < 0 and loopvar not in body_keys:
                    env.assign(loopvar, Ival(None, init_ival.hi))
                elif loopvar not in body_keys and stmt.update is None:
                    env.assign(loopvar, init_ival)
                else:
                    # body writes the loop variable in an unmodelled way;
                    # keep only what the condition can prove
                    if (init_ival.lo is not None and loopvar in body_keys
                            and stmt.update is None):
                        env.assign(loopvar, Ival(init_ival.lo, None))
            if stmt.cond is not None:
                self.refine(stmt.cond, env)

            if is_par and loopvar is not None:
                self.par_stack.append(_ParFrame(loopvar, stmt.line))
            try:
                self._exec(stmt.body, env)
            finally:
                if is_par and loopvar is not None:
                    self.par_stack.pop()
        finally:
            env.pop()
            # after the loop every written variable still visible outside
            # holds an unknown value
            for key in self._written_keys(stmt.init, stmt.update, stmt.body):
                if key in env:
                    env.assign(key, TOP)

    def _direction_mismatch(self, cond: ast.Expr, var: str,
                            step: float) -> bool:
        if not isinstance(cond, ast.Binary):
            return False
        op = cond.op
        if _key_of(cond.left) == var and op in ("<", "<=", ">", ">="):
            upper = op in ("<", "<=")
        elif _key_of(cond.right) == var and op in ("<", "<=", ">", ">="):
            upper = op in (">", ">=")
        else:
            return False
        return (upper and step < 0) or (not upper and step > 0)

    def _exec_while(self, stmt: ast.While, env: AbsEnv) -> None:
        entry = self.truth(stmt.cond, env)
        if entry == FALSE:
            self.emit(PM031.at(
                stmt,
                f"while condition {format_expression(stmt.cond)} is false "
                f"on entry: the body never executes",
            ))
            return
        cond_keys = _keys_in(stmt.cond)
        body_keys = self._written_keys(stmt.body)
        has_call = any(isinstance(n, ast.Call) for n in ast.walk(stmt.cond))
        if entry == TRUE and not (cond_keys & body_keys) and not has_call:
            self.emit(PM033.at(
                stmt,
                f"while condition {format_expression(stmt.cond)} is "
                f"always true and the body changes no variable it reads: "
                f"the loop never terminates",
            ))
        for key in body_keys:
            env.assign(key, TOP)
        refined = env.copy()
        self.refine(stmt.cond, refined)
        self._exec(stmt.body, refined)
        env.frames = refined.frames
        for key in body_keys:
            if key in env:
                env.assign(key, TOP)

    # ------------------------------------------------------------------
    # communication-structure pass
    # ------------------------------------------------------------------
    def _comm_structure(self) -> None:
        # processors that receive but provably never compute
        for t in self.transfers:
            if not self.computes:
                self.emit(PM060.at(
                    t.line,
                    "the scheme transfers data but contains no compute "
                    "action: receivers never compute",
                ))
                continue
            if all(_regions_disjoint(t.region, c.region)
                   for c in self.computes):
                self.emit(PM060.at(
                    t.line,
                    "processors receiving this transfer never appear in "
                    "any compute action",
                ))

        # declared links never exercised by the scheme
        for rule_, src, dst in self.link_regions:
            exercised = any(
                not _regions_disjoint(t.src_region or [], src)
                and not _regions_disjoint(t.region, dst)
                for t in self.transfers
            )
            if not exercised:
                self.emit(PM061.at(
                    rule_,
                    f"link rule {_fmt_coords(rule_.src)}->"
                    f"{_fmt_coords(rule_.dst)} is never exercised by the "
                    f"scheme: its declared volume is unreachable",
                ))

        # single-port serialization hotspots
        for t in self.transfers:
            fan_in = [p.var for p in t.par_vars
                      if p.var in t.src_keys and p.var not in t.dst_keys]
            fan_out = [p.var for p in t.par_vars
                       if p.var in t.dst_keys and p.var not in t.src_keys]
            notes = []
            if fan_in:
                notes.append(
                    f"fan-in over par variable(s) {', '.join(fan_in)} "
                    f"serializes at the destination port")
            if fan_out:
                notes.append(
                    f"fan-out over par variable(s) {', '.join(fan_out)} "
                    f"serializes at the source port")
            if notes:
                self.emit(PM062.at(
                    t.line,
                    "single-port hotspot: " + "; ".join(notes),
                    hint="Timeof prices these transfers sequentially "
                         "under the single-port model",
                ))


def _regions_disjoint(a: list[Ival], b: list[Ival]) -> bool:
    """Provably no coordinate tuple lies in both regions."""
    if not a or not b or len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x.lo is not None and y.hi is not None
                and (d := x.lo.diff_const(y.hi)) is not None and d > 0):
            return True
        if (x.hi is not None and y.lo is not None
                and (d := x.hi.diff_const(y.lo)) is not None and d < 0):
            return True
    return False


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def analyze_algorithm(
    alg: ast.Algorithm,
    structs: dict[str, ast.StructDef] | None = None,
) -> list[Diagnostic]:
    """Run every analyzer rule over one parsed (unbound) algorithm."""
    return _Analyzer(alg, dict(structs or {})).run()


def check_source(source: str, target: str = "<source>", *,
                 net: bool = False,
                 externals: dict | None = None) -> DiagnosticReport:
    """Full static check of PMDL source text, never raising for model bugs.

    Parser and semantic failures become ``PM001``/``PM002`` error
    diagnostics; otherwise every algorithm in the unit is analyzed.  External
    functions called by schemes are assumed declared (the CLI has no
    bindings at check time).

    With ``net=True`` each clean algorithm is additionally unrolled into
    its communication net at an automatic probe binding and the PM08x
    structural checks run (:mod:`repro.perfmodel.netcheck`); ``externals``
    supplies real implementations of called functions so schemes using
    them can unroll (otherwise they skip with PM084).
    """
    from .parser import parse
    from .semantics import check_algorithm

    report = DiagnosticReport(target=target)
    try:
        items = parse(source)
    except PMDLSyntaxError as exc:
        report.add(PM001.at(exc.line, str(exc)))
        return report
    except PMDLError as exc:  # pragma: no cover - defensive
        report.add(PM001.at(0, str(exc)))
        return report

    structs: dict[str, ast.StructDef] = {}
    algorithms: list[ast.Algorithm] = []
    for item in items:
        if isinstance(item, ast.StructDef):
            if item.name in structs:
                report.add(PM002.at(item, f"duplicate struct definition "
                                          f"{item.name!r}"))
            structs[item.name] = item
        else:
            algorithms.append(item)
    if not algorithms:
        report.add(PM002.at(0, "source defines no algorithm"))
        return report

    seen: set[str] = set()
    for alg in algorithms:
        if alg.name in seen:
            report.add(PM002.at(alg, f"duplicate algorithm definition "
                                     f"{alg.name!r}"))
            continue
        seen.add(alg.name)
        called = {node.name for node in ast.walk(alg)
                  if isinstance(node, ast.Call)}
        try:
            check_algorithm(alg, structs, frozenset(called))
        except PMDLSemanticError as exc:
            for line, message in _split_semantic_errors(str(exc)):
                report.add(PM002.at(line, message))
            continue
        report.extend(analyze_algorithm(alg, structs))
        if net:
            from .netcheck import check_algorithm_net
            report.extend(check_algorithm_net(alg, structs, externals))
    report.sort()
    return report


def _split_semantic_errors(text: str) -> list[tuple[int, str]]:
    """Recover (line, message) pairs from a PMDLSemanticError message."""
    out: list[tuple[int, str]] = []
    for raw in text.splitlines():
        raw = raw.strip()
        if raw.startswith("line ") and ":" in raw:
            head, _, rest = raw.partition(":")
            try:
                out.append((int(head[5:]), rest.strip()))
                continue
            except ValueError:
                pass
    if not out:
        out.append((0, text))
    return out
