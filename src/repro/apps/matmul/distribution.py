"""Heterogeneous 2D generalized-block matrix distribution.

Implements the data distribution of Kalinov & Lastovetsky [6] that the
paper's matrix-multiplication algorithm modifies ScaLAPACK with:

- the matrix is an ``n x n`` grid of ``r x r`` blocks, tiled by
  generalized blocks of ``l x l`` blocks (``m <= l <= n``);
- every generalized block is partitioned identically into ``m`` vertical
  slices whose widths are proportional to the *column sums* of the
  processor-speed matrix (balancing between processor columns), then each
  vertical slice independently into ``m`` horizontal slices proportional to
  the individual speeds (balancing within each column);
- processor ``P_IJ`` stores the rectangle at row-slice I of column-slice J.

Widths/heights are integers ≥ 1 summing to ``l`` (largest-remainder
rounding), so the rectangle areas are proportional to speeds up to integer
granularity — exactly the paper's "area of each rectangle is proportional
to the speed of the processor".

The homogeneous special case (all speeds equal, ``l = m``) degenerates to
the standard ScaLAPACK 2D block-cyclic distribution, which is the paper's
MPI baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ...util.errors import ReproError

__all__ = [
    "proportional_partition",
    "partition_generalized_block",
    "heights_tensor",
    "BlockDistribution",
    "homogeneous_distribution",
    "heterogeneous_distribution",
]


def proportional_partition(total: int, weights: np.ndarray, minimum: int = 1) -> np.ndarray:
    """Split ``total`` into ``len(weights)`` ints ≥ ``minimum``, areas ∝ weights.

    Largest-remainder method: floor the proportional shares (clamped to the
    minimum), then hand out the leftover units to the largest fractional
    remainders.  Deterministic; ties broken by index.
    """
    weights = np.asarray(weights, dtype=float)
    k = len(weights)
    if k == 0:
        raise ReproError("cannot partition among zero parts")
    if (weights <= 0).any():
        raise ReproError("weights must be positive")
    if total < minimum * k:
        raise ReproError(
            f"cannot give {k} parts at least {minimum} from a total of {total}"
        )
    ideal = weights / weights.sum() * total
    base = np.maximum(np.floor(ideal).astype(int), minimum)
    deficit = total - int(base.sum())
    if deficit > 0:
        # Hand out missing units to the largest fractional remainders.
        remainder = ideal - np.floor(ideal)
        order = sorted(range(k), key=lambda i: (-remainder[i], i))
        for step in range(deficit):
            base[order[step % k]] += 1
    elif deficit < 0:
        # The minimum clamp over-allocated; reclaim from the parts whose
        # integer share most exceeds their ideal, never going below minimum.
        while deficit < 0:
            surplus = base - ideal
            order = sorted(range(k), key=lambda i: (-surplus[i], i))
            took = False
            for i in order:
                if base[i] > minimum:
                    base[i] -= 1
                    deficit += 1
                    took = True
                    break
            if not took:  # pragma: no cover - guarded by the total check
                raise ReproError("partition repair failed")
    assert base.sum() == total and (base >= minimum).all()
    return base


def partition_generalized_block(
    l: int, speeds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Partition an ``l x l`` generalized block for an ``m x m`` speed grid.

    Returns ``(w, heights)``: ``w[j]`` is the width of column slice j;
    ``heights[i, j]`` the height of processor (i, j)'s rectangle within
    column slice j.  Each column of ``heights`` sums to ``l``; ``w`` sums
    to ``l``.
    """
    speeds = np.asarray(speeds, dtype=float)
    if speeds.ndim != 2 or speeds.shape[0] != speeds.shape[1]:
        raise ReproError(f"speed grid must be square, got {speeds.shape}")
    m = speeds.shape[0]
    if l < m:
        raise ReproError(f"generalized block size l={l} must be >= m={m}")
    # Step 1: vertical slices proportional to column speed sums.
    w = proportional_partition(l, speeds.sum(axis=0))
    # Step 2: each vertical slice split independently by individual speeds.
    heights = np.zeros((m, m), dtype=int)
    for j in range(m):
        heights[:, j] = proportional_partition(l, speeds[:, j])
    return w, heights


def heights_tensor(heights: np.ndarray) -> np.ndarray:
    """The model's ``h[I][J][K][L]`` tensor from per-column heights.

    ``h[I][J][K][L]`` is the number of generalized-block rows shared by
    rectangle R_IJ (rows of processor I in column J) and rectangle R_KL —
    "the height of the rectangle area of R_IJ required by processor P_KL".
    By construction ``h[I][J][I][J]`` is R_IJ's own height and the tensor
    is symmetric under (I,J) <-> (K,L).
    """
    m = heights.shape[0]
    starts = np.zeros((m, m), dtype=int)
    for j in range(m):
        starts[:, j] = np.concatenate(([0], np.cumsum(heights[:-1, j])))
    h4 = np.zeros((m, m, m, m), dtype=int)
    for i in range(m):
        for j in range(m):
            lo1, hi1 = starts[i, j], starts[i, j] + heights[i, j]
            for k in range(m):
                for l2 in range(m):
                    lo2, hi2 = starts[k, l2], starts[k, l2] + heights[k, l2]
                    h4[i, j, k, l2] = max(0, min(hi1, hi2) - max(lo1, lo2))
    return h4


@dataclass(frozen=True)
class BlockDistribution:
    """A concrete assignment of an ``n x n`` block matrix to an ``m x m`` grid.

    Grid rank of processor (I, J) is ``I * m + J`` — identical to the
    row-major linearisation the performance model uses, so group rank,
    abstract processor, and grid position all coincide.
    """

    n: int                 # matrix size in r x r blocks
    l: int                 # generalized block size in blocks
    w: tuple[int, ...]     # column-slice widths (sum = l)
    heights_matrix: tuple[tuple[int, ...], ...]  # heights[i][j], columns sum to l

    def __post_init__(self) -> None:
        m = self.m
        if self.n % self.l != 0:
            raise ReproError(
                f"matrix size n={self.n} blocks must be a multiple of l={self.l}"
            )
        if sum(self.w) != self.l:
            raise ReproError("column widths must sum to l")
        for j in range(m):
            if sum(self.heights_matrix[i][j] for i in range(m)) != self.l:
                raise ReproError(f"heights of column {j} must sum to l")

    @property
    def m(self) -> int:
        return len(self.w)

    @property
    def ng(self) -> int:
        """Generalized blocks along one dimension (the model's sqrt(n_g))."""
        return self.n // self.l

    @property
    def heights(self) -> np.ndarray:
        return np.array(self.heights_matrix, dtype=int)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @lru_cache(maxsize=None)
    def _column_of(self) -> np.ndarray:
        """column slice J of each in-gblock column index (length l)."""
        out = np.empty(self.l, dtype=int)
        pos = 0
        for j, width in enumerate(self.w):
            out[pos:pos + width] = j
            pos += width
        return out

    @lru_cache(maxsize=None)
    def _row_of(self) -> np.ndarray:
        """row slice I of each in-gblock row index, per column slice: (l, m)."""
        m = self.m
        out = np.empty((self.l, m), dtype=int)
        hm = self.heights
        for j in range(m):
            pos = 0
            for i in range(m):
                out[pos:pos + hm[i, j], j] = i
                pos += hm[i, j]
        return out

    def owner(self, block_row: int, block_col: int) -> tuple[int, int]:
        """Grid coordinates (I, J) of the processor owning block (row, col)."""
        gi = block_row % self.l
        gj = block_col % self.l
        J = int(self._column_of()[gj])
        I = int(self._row_of()[gi, J])
        return I, J

    def owner_rank(self, block_row: int, block_col: int) -> int:
        I, J = self.owner(block_row, block_col)
        return I * self.m + J

    def blocks_of(self, grid_rank: int) -> list[tuple[int, int]]:
        """All (row, col) blocks owned by a grid rank, row-major order."""
        I, J = divmod(grid_rank, self.m)
        col_of = self._column_of()
        row_of = self._row_of()
        rows = [gi for gi in range(self.l) if row_of[gi, J] == I]
        cols = [gj for gj in range(self.l) if col_of[gj] == J]
        ng = self.ng
        out = []
        for bi in range(ng):
            for gi in rows:
                for bj in range(ng):
                    for gj in cols:
                        out.append((bi * self.l + gi, bj * self.l + gj))
        return out

    def rows_owned_in_column(self, I: int, J: int) -> list[int]:
        """In-gblock row indices of processor (I, J)'s rectangle."""
        row_of = self._row_of()
        return [gi for gi in range(self.l) if row_of[gi, J] == I]

    def cols_owned(self, J: int) -> list[int]:
        """In-gblock column indices of column slice J."""
        col_of = self._column_of()
        return [gj for gj in range(self.l) if col_of[gj] == J]

    def area(self, grid_rank: int) -> int:
        """Number of blocks owned by a grid rank."""
        I, J = divmod(grid_rank, self.m)
        return self.w[J] * self.heights_matrix[I][J] * self.ng * self.ng

    def h4(self) -> np.ndarray:
        """The model's h[I][J][K][L] tensor for this distribution."""
        return heights_tensor(self.heights)


def homogeneous_distribution(n: int, m: int) -> BlockDistribution:
    """Standard ScaLAPACK 2D block-cyclic: l = m, all widths/heights 1."""
    if n % m != 0:
        raise ReproError(f"n={n} must be a multiple of m={m}")
    ones = tuple(tuple(1 for _ in range(m)) for _ in range(m))
    return BlockDistribution(n=n, l=m, w=tuple(1 for _ in range(m)),
                             heights_matrix=ones)


def heterogeneous_distribution(n: int, l: int, speeds: np.ndarray) -> BlockDistribution:
    """The paper's distribution for an ``m x m`` grid with the given speeds."""
    w, heights = partition_generalized_block(l, speeds)
    return BlockDistribution(
        n=n, l=l, w=tuple(int(x) for x in w),
        heights_matrix=tuple(tuple(int(x) for x in row) for row in heights),
    )
