"""Ready-made clusters, including the paper's testbed.

The experiments in Section 5 of the paper ran on "a small heterogeneous
local network of 9 different Solaris and Linux workstations" whose measured
speeds on the applications' core computations were::

    46, 46, 46, 46, 46, 46, 176, 106, 9

connected by 100 Mbit switched Ethernet.  (The matrix-multiplication
paragraph lists only eight numbers — 46 x 6, 106, 9 — which is an apparent
typo since the same 9-machine network is described; we reuse the full
9-speed set for both applications and note the discrepancy in
EXPERIMENTS.md.)
"""

from __future__ import annotations

from collections.abc import Sequence

from ..util.rng import make_rng
from .link import FAST_INTERCONNECT, SHARED_MEMORY, TCP_100MBIT, Link, Protocol
from .machine import Machine
from .network import Cluster

__all__ = [
    "PAPER_SPEEDS",
    "paper_network",
    "homogeneous_network",
    "uniform_network",
    "random_network",
    "multiprotocol_network",
]

#: Measured speeds of the paper's nine workstations (benchmark units / sec).
PAPER_SPEEDS: tuple[float, ...] = (46, 46, 46, 46, 46, 46, 176, 106, 9)

#: OS mix matching "Solaris and Linux workstations" (cosmetic only).
_PAPER_OS: tuple[str, ...] = (
    "solaris", "solaris", "linux", "linux", "solaris",
    "linux", "linux", "solaris", "linux",
)


def paper_network(speeds: Sequence[float] = PAPER_SPEEDS) -> Cluster:
    """The paper's 9-workstation 100 Mbit switched-Ethernet network.

    Every inter-machine pair shares identical TCP links; ranks co-located on
    one machine use shared memory, mirroring the MPICH behaviour the paper
    cites as the one standard exception to single-protocol MPI.
    """
    machines = [
        Machine(name=f"ws{i:02d}", speed=s, os=_PAPER_OS[i % len(_PAPER_OS)])
        for i, s in enumerate(speeds)
    ]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def homogeneous_network(n: int, speed: float = 100.0) -> Cluster:
    """``n`` identical machines — the control case where HMPI ≡ MPI."""
    machines = [Machine(name=f"node{i:02d}", speed=speed) for i in range(n)]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def uniform_network(speeds: Sequence[float], name_prefix: str = "m") -> Cluster:
    """Machines with the given speeds and uniform default TCP links."""
    machines = [Machine(name=f"{name_prefix}{i:02d}", speed=s) for i, s in enumerate(speeds)]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def random_network(
    n: int,
    seed: int = 0,
    speed_range: tuple[float, float] = (10.0, 200.0),
    latency_range: tuple[float, float] = (5e-5, 5e-4),
    bandwidth_range: tuple[float, float] = (5e6, 5e7),
) -> Cluster:
    """A fully random HNOC: heterogeneous speeds *and* heterogeneous links.

    Used by property-based tests and robustness sweeps; deterministic given
    ``seed``.  Links are symmetric per unordered pair.
    """
    rng = make_rng(seed)
    machines = [
        Machine(name=f"rnd{i:02d}", speed=float(rng.uniform(*speed_range)))
        for i in range(n)
    ]
    cluster = Cluster(machines, default_protocols=(TCP_100MBIT,))
    for i in range(n):
        for j in range(i + 1, n):
            proto = Protocol(
                name=f"tcp-{i}-{j}",
                latency=float(rng.uniform(*latency_range)),
                bandwidth=float(rng.uniform(*bandwidth_range)),
            )
            cluster.set_link(i, j, Link.single(proto), symmetric=True)
    return cluster


def multiprotocol_network(
    speeds: Sequence[float] = PAPER_SPEEDS,
    fast_pairs: Sequence[tuple[int, int]] = ((6, 7), (0, 1), (2, 3)),
) -> Cluster:
    """Paper network plus a faster interconnect on selected pairs.

    Models the multi-protocol challenge: the named pairs can talk over both
    TCP and a fast transport, and the library picks the faster per message.
    Pinning all links to ``"tcp-100mbit"`` recovers the single-protocol
    baseline (see ``bench_ablation_protocol``).
    """
    cluster = paper_network(speeds)
    for i, j in fast_pairs:
        cluster.set_link(i, j, Link([TCP_100MBIT, FAST_INTERCONNECT]), symmetric=True)
    return cluster
