"""MonitorServer: every endpoint over real HTTP on an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    EventBus,
    MetricsRegistry,
    MonitorServer,
    Observability,
    parse_openmetrics,
)


def get(url: str):
    """(status, content-type, body text) for a GET, 4xx included."""
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.headers["Content-Type"], \
                resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.headers["Content-Type"], err.read().decode()


@pytest.fixture()
def stack():
    """(server, registry, bus) — server started, torn down after."""
    registry = MetricsRegistry()
    registry.counter("hmpi.repairs").inc(2)
    registry.gauge("engine.heap").set(5.0, vtime=1.5)
    bus = EventBus()
    bus.emit("fault", "rank.dead", rank=3)
    bus.emit("campaign", "cell.finish", done=1, total=4)
    with MonitorServer(metrics=registry, telemetry=bus) as server:
        yield server, registry, bus
    bus.close()


class TestEndpoints:
    def test_healthz(self, stack):
        server, _, _ = stack
        status, ctype, body = get(server.url + "/healthz")
        assert status == 200 and ctype == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0.0

    def test_metrics_serves_valid_openmetrics(self, stack):
        server, _, _ = stack
        status, ctype, body = get(server.url + "/metrics")
        assert status == 200
        assert ctype.startswith("application/openmetrics-text")
        families = parse_openmetrics(body)
        assert families["hmpi_repairs"]["samples"] == [
            ("hmpi_repairs_total", {}, 2.0)]

    def test_metrics_reflects_live_updates(self, stack):
        server, registry, _ = stack
        registry.counter("hmpi.repairs").inc(5)
        _, _, body = get(server.url + "/metrics")
        assert "hmpi_repairs_total 7.0" in body

    def test_snapshot_is_schema_versioned_json(self, stack):
        server, _, _ = stack
        status, ctype, body = get(server.url + "/snapshot")
        assert status == 200 and ctype == "application/json"
        snap = json.loads(body)
        assert snap["schema_version"] == 1
        assert {m["name"] for m in snap["metrics"]} == {
            "hmpi.repairs", "engine.heap"}

    def test_events_ndjson_tail(self, stack):
        server, _, _ = stack
        status, ctype, body = get(server.url + "/events")
        assert status == 200 and ctype == "application/x-ndjson"
        events = [json.loads(line) for line in body.strip().splitlines()]
        assert [e["name"] for e in events] == ["rank.dead", "cell.finish"]
        assert events[0]["rank"] == 3

    def test_events_n_caps_the_tail(self, stack):
        server, _, bus = stack
        bus.emit("fault", "rank.dead", rank=4)
        _, _, body = get(server.url + "/events?n=1")
        events = body.strip().splitlines()
        assert len(events) == 1
        assert json.loads(events[0])["rank"] == 4

    def test_events_bad_n_is_400(self, stack):
        server, _, _ = stack
        status, _, _ = get(server.url + "/events?n=wat")
        assert status == 400

    @pytest.mark.parametrize("n", ["-1", "-3", "1000001", str(10**18), "1.5",
                                   "nan", "inf", "0x10", ""])
    def test_events_hostile_n_is_400_not_a_crash(self, stack, n):
        # Regression: these used to raise in the handler thread.  The
        # server must answer 400 and keep serving afterwards.
        server, _, _ = stack
        status, _, body = get(server.url + f"/events?n={n}")
        assert status == 400, (n, body)
        assert get(server.url + "/events?n=1")[0] == 200

    def test_events_n_zero_is_empty_200(self, stack):
        server, _, _ = stack
        status, _, body = get(server.url + "/events?n=0")
        assert status == 200
        assert body.strip() == ""

    def test_unknown_route_is_404(self, stack):
        server, _, _ = stack
        assert get(server.url + "/nope")[0] == 404


class TestConfiguration:
    def test_requires_some_source(self):
        with pytest.raises(ValueError, match="metrics, snapshot_fn"):
            MonitorServer()

    def test_metrics_only_has_no_events_endpoint(self):
        with MonitorServer(metrics=MetricsRegistry()) as server:
            assert get(server.url + "/events")[0] == 404
            assert get(server.url + "/metrics")[0] == 200

    def test_telemetry_only_has_no_metrics_endpoint(self):
        bus = EventBus()
        with MonitorServer(telemetry=bus) as server:
            assert get(server.url + "/metrics")[0] == 404
            assert get(server.url + "/events")[0] == 200
        bus.close()

    def test_snapshot_fn_overrides_metrics(self):
        obs = Observability(telemetry=True)
        obs.metrics.counter("c").inc()
        with MonitorServer(snapshot_fn=obs.snapshot,
                           telemetry=obs.telemetry) as server:
            snap = json.loads(get(server.url + "/snapshot")[2])
        # The Observability snapshot folds extra sections in.
        assert "telemetry" in snap and "spans" in snap

    def test_ephemeral_port_bound_and_reported(self, stack):
        server, _, _ = stack
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_double_start_rejected(self, stack):
        server, _, _ = stack
        with pytest.raises(RuntimeError, match="already started"):
            server.start()

    def test_stop_is_idempotent(self):
        server = MonitorServer(metrics=MetricsRegistry()).start()
        server.stop()
        server.stop()
