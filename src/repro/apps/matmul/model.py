"""The ParallelAxB performance model — the paper's Figure 7.

Six parameters: grid size ``m``, block size ``r``, matrix size ``n`` (in
r×r blocks), generalized block size ``l``, column widths ``w`` and the
pairwise heights tensor ``h``.  The unit of computation (``bench``) is one
r×r matrix multiplication; the scheme describes all ``n`` steps of the
algorithm: the pivot row of B broadcast vertically, the pivot column of A
broadcast horizontally, then every processor updating its C blocks.

Two deliberate corrections of apparent typos in the printed figure, both
justified by the paper's own prose (Section 4):

1. The first link rule (matrix B, vertical) uses ``w[J]`` — the text says
   "the total number of r×r blocks of matrix B assigned to processor P_IJ
   is given by w[J]*h[I][J][I][J]*(n/l)*(n/l)"; the figure prints ``w[I]``.
2. The B rule describes traffic within a processor *column* (``[I,J] ->
   [K,J]``, condition ``I != K``), the A rule across columns — matching
   the algorithm's broadcast directions.
"""

from __future__ import annotations

import numpy as np

from ...perfmodel import PerformanceModel, compile_model
from .distribution import BlockDistribution

__all__ = ["MM_MODEL_SOURCE", "make_get_processor", "matmul_model", "bind_matmul_model"]

#: Figure 7 of the paper (with the two documented typo fixes).
MM_MODEL_SOURCE = """
typedef struct {int I; int J;} Processor;

algorithm ParallelAxB(int m, int r, int n, int l, int w[m],
                      int h[m][m][m][m])
{
  coord I=m, J=m;
  node {I>=0 && J>=0: bench*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*n);};
  link (K=m, L=m)
  {
    I>=0 && J>=0 && I!=K :
      length*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, J];
    I>=0 && J>=0 && J!=L && ((h[I][J][K][L]) > 0) :
      length*(w[J]*(h[I][J][K][L])*(n/l)*(n/l)*(r*r)*sizeof(double))
              [I, J] -> [K, L];
  };
  parent[0,0];
  scheme
  {
    int k;
    Processor Root, Receiver, Current;
    for(k = 0; k < n; k++)
    {
      int Acolumn = k%l, Arow;
      int Brow = k%l, Bcolumn;
      par(Arow = 0; Arow < l; )
      {
        GetProcessor(Arow, Acolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          par(Receiver.J = 0; Receiver.J < m; Receiver.J++)
            if((Root.I != Receiver.I || Root.J != Receiver.J) &&
               Root.J != Receiver.J)
              if((h[Root.I][Root.J][Receiver.I][Receiver.J]) > 0)
                (100/(w[Root.J]*(n/l)))%%
                       [Root.I, Root.J] -> [Receiver.I, Receiver.J];
        Arow += h[Root.I][Root.J][Root.I][Root.J];
      }
      par(Bcolumn = 0; Bcolumn < l; )
      {
        GetProcessor(Brow, Bcolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          if(Root.I != Receiver.I)
            (100/((h[Root.I][Root.J][Root.I][Root.J])*(n/l))) %%
                  [Root.I, Root.J] -> [Receiver.I, Root.J];
        Bcolumn += w[Root.J];
      }
      par(Current.I = 0; Current.I < m; Current.I++)
        par(Current.J = 0; Current.J < m; Current.J++)
          (100/n) %% [Current.I, Current.J];
    }
  };
};
"""


def make_get_processor():
    """The scheme's external ``GetProcessor(row, col, m, h, w, &Root)``.

    Returns, in ``Root``, the grid coordinates of the processor storing the
    r×r block at in-generalized-block coordinates (row, col): locate the
    vertical slice by cumulative widths, then the row slice by cumulative
    own-heights (``h[i][J][i][J]``) within that column.
    """

    def GetProcessor(row, col, m, h, w, root) -> None:
        acc = 0
        J = int(m) - 1
        for j in range(int(m)):
            width = int(w[j])
            if col < acc + width:
                J = j
                break
            acc += width
        acc = 0
        I = int(m) - 1
        for i in range(int(m)):
            height = int(h[i][J][i][J])
            if row < acc + height:
                I = i
                break
            acc += height
        root.set("I", I)
        root.set("J", J)

    return GetProcessor


_cached: PerformanceModel | None = None


def matmul_model() -> PerformanceModel:
    """The compiled ``ParallelAxB`` model (compiled once, cached)."""
    global _cached
    if _cached is None:
        _cached = compile_model(
            MM_MODEL_SOURCE, externals={"GetProcessor": make_get_processor()}
        )
    return _cached


def bind_matmul_model(dist: BlockDistribution, r: int):
    """Bind the model to a concrete distribution and block size."""
    return matmul_model().bind(
        dist.m, r, dist.n, dist.l, list(dist.w), dist.h4()
    )
