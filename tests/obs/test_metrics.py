"""Metrics registry: instruments, labels, type commitment, snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    publish_selection_stats,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("hmpi.test.calls")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert reg.get_value("hmpi.test.calls") == 3.5

    def test_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1.0)

    def test_same_name_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("x", group=1).inc()
        reg.counter("x", group=1).inc()
        assert reg.get_value("x", group=1) == 2.0


class TestGauge:
    def test_set_add_and_vtime(self):
        reg = MetricsRegistry()
        g = reg.gauge("free_procs")
        g.set(5.0, vtime=1.0)
        g.add(-2.0, vtime=3.0)
        assert g.value == 3.0
        assert g.vtime == 3.0
        assert g.as_dict()["vtime"] == 3.0

    def test_vtime_optional(self):
        reg = MetricsRegistry()
        g = reg.gauge("x")
        g.set(1.0)
        assert "vtime" not in g.as_dict()


class TestHistogram:
    def test_count_sum_min_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(0.111)
        assert d["min"] == pytest.approx(0.001)
        assert d["max"] == pytest.approx(0.1)

    def test_quantiles_bucket_resolution(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for _ in range(99):
            h.observe(0.001)
        h.observe(10.0)
        # p50 lands in the 0.001 bucket; p95 too; max caps estimates.
        assert h.quantile(0.5) <= 0.0011
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_range_check(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("lat").quantile(1.5)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_histogram_snapshot(self):
        reg = MetricsRegistry()
        d = reg.histogram("lat").as_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["p50"] is None


class TestRegistry:
    def test_labels_fan_out_series(self):
        reg = MetricsRegistry()
        reg.counter("sends", machine="a").inc()
        reg.counter("sends", machine="b").inc(2)
        assert reg.get_value("sends", machine="a") == 1.0
        assert reg.get_value("sends", machine="b") == 2.0
        assert len(reg.series("sends")) == 2

    def test_type_commitment(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", other="label")

    def test_snapshot_shape_and_json(self):
        reg = MetricsRegistry()
        reg.counter("c", op="timeof").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.2)
        reg.mark_vtime(1.0)
        reg.mark_vtime(5.0)
        snap = json.loads(reg.to_json())
        assert snap["vtime"] == {"min": 1.0, "max": 5.0}
        by_name = {s["name"]: s for s in snap["metrics"]}
        assert by_name["c"]["type"] == "counter"
        assert by_name["c"]["labels"] == {"op": "timeof"}
        assert by_name["g"]["value"] == 1.5
        assert by_name["h"]["count"] == 1

    def test_get_value_missing(self):
        assert MetricsRegistry().get_value("nope") is None


class TestSelectionStatsBridge:
    def test_publish_selection_stats(self):
        from repro.core.seleng import SelectionStats

        reg = MetricsRegistry()
        stats = SelectionStats()
        stats.cache_hits = 3
        stats.evaluations = 7
        publish_selection_stats(reg, stats, mapper="greedy")
        assert reg.get_value("hmpi.selection.cache_hits", mapper="greedy") == 3.0
        assert reg.get_value("hmpi.selection.evaluations", mapper="greedy") == 7.0
        # Idempotent: re-publishing the live totals does not double-count.
        publish_selection_stats(reg, stats, mapper="greedy")
        assert reg.get_value("hmpi.selection.cache_hits", mapper="greedy") == 3.0

    def test_observability_sums_stats_per_label_set(self):
        from repro.core.seleng import SelectionStats
        from repro.obs import Observability

        obs = Observability(tracer=False)
        for hits in (2, 5):
            stats = SelectionStats()
            stats.cache_hits = hits
            obs.attach_selection_stats(stats)
        obs.snapshot()
        assert obs.metrics.get_value("hmpi.selection.cache_hits") == 7.0


# Frozen field sets per snapshot schema version (mirrors the campaign
# results guard in tests/campaign/test_golden.py).  /snapshot consumers,
# the OpenMetrics renderer, and saved snapshot files all key off these.
METRICS_SCHEMA_FINGERPRINTS = {
    1: {
        "top": ("metrics", "schema_version", "vtime"),
        "counter": ("labels", "name", "type", "value"),
        "gauge": ("labels", "name", "type", "value", "vtime"),
        "histogram": ("buckets", "count", "labels", "max", "mean", "min",
                      "name", "p50", "p95", "sum", "type"),
    },
}


class TestSnapshotSchemaGuard:
    def test_current_version_has_a_fingerprint(self):
        from repro.obs import METRICS_SCHEMA_VERSION

        assert METRICS_SCHEMA_VERSION in METRICS_SCHEMA_FINGERPRINTS, (
            f"metrics schema version {METRICS_SCHEMA_VERSION} has no "
            f"frozen fingerprint: record its field sets in "
            f"METRICS_SCHEMA_FINGERPRINTS"
        )

    def test_fields_match_the_frozen_fingerprint(self):
        from repro.obs import METRICS_SCHEMA_VERSION

        reg = MetricsRegistry()
        reg.counter("c", a=1).inc()
        reg.gauge("g").set(1.0, vtime=2.0)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        frozen = METRICS_SCHEMA_FINGERPRINTS[METRICS_SCHEMA_VERSION]
        seen = {"top": tuple(sorted(snap))}
        for series in snap["metrics"]:
            seen[series["type"]] = tuple(sorted(series))
        assert seen == frozen, (
            f"snapshot fields changed without a schema bump: saved "
            f"snapshots and /snapshot consumers written as schema "
            f"{METRICS_SCHEMA_VERSION} would silently mismatch.  Bump "
            f"METRICS_SCHEMA_VERSION in src/repro/obs/metrics.py and "
            f"freeze the new fingerprint here"
        )

    def test_snapshot_leads_with_schema_version(self):
        snap = MetricsRegistry().snapshot()
        assert next(iter(snap)) == "schema_version"
        assert snap["schema_version"] == 1
