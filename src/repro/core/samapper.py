"""Simulated-annealing mapper — for instances where local search stalls.

The default greedy+refine mapper is a hill climber: on communication-heavy
models with rugged objective landscapes it can stop in a local optimum.
Simulated annealing escapes by occasionally accepting worse mappings, with
a temperature schedule calibrated to the seed mapping's predicted time.
Fully deterministic given its seed.

Quality is validated against the exhaustive oracle in the tests; cost is
``moves`` estimator evaluations over the cached trace.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence

from ..perfmodel.model import AbstractBoundModel
from ..util.rng import make_rng
from .mapper import (
    GreedyMapper,
    Mapper,
    Mapping,
    _check_inputs,
    _seed_select,
    register_mapper,
)
from .netmodel import NetworkModel
from .seleng import SelectionStats, TraceEvaluator

__all__ = ["AnnealingMapper"]


class AnnealingMapper(Mapper):
    """Simulated annealing over swap/move neighbourhoods.

    Parameters
    ----------
    seed_mapper:
        Produces the starting mapping (default greedy).
    moves:
        Total candidate evaluations (the budget).
    start_temp_fraction:
        Initial temperature as a fraction of the seed mapping's predicted
        time; cooled geometrically to ~1e-3 of that over the budget.
    rng_seed:
        Determinism knob.
    """

    def __init__(
        self,
        seed_mapper: Mapper | None = None,
        moves: int = 400,
        start_temp_fraction: float = 0.2,
        rng_seed: int = 0,
    ):
        self.seed_mapper = seed_mapper or GreedyMapper()
        self.moves = moves
        self.start_temp_fraction = start_temp_fraction
        self.rng_seed = rng_seed

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        _check_inputs(model, candidates, fixed)
        rng = make_rng(self.rng_seed)
        n = model.nproc
        pinned = set(fixed)
        movable = [i for i in range(n) if i not in pinned]

        current = _seed_select(
            self.seed_mapper, model, netmodel, candidates, fixed, stats
        )
        best = current
        evaluator = TraceEvaluator(model, netmodel, stats)
        if not movable:
            return best

        temp = max(current.time * self.start_temp_fraction, 1e-12)
        cooling = (1e-3) ** (1.0 / max(self.moves, 1))
        assignment = list(current.processes)
        current_time = current.time

        for _ in range(self.moves):
            trial = list(assignment)
            unused = [c for c in candidates if c not in set(trial)]
            # swap two movable slots, or move one slot to an unused process
            if unused and rng.random() < 0.5:
                i = movable[int(rng.integers(len(movable)))]
                trial[i] = unused[int(rng.integers(len(unused)))]
            elif len(movable) >= 2:
                i, j = rng.choice(len(movable), size=2, replace=False)
                a, b = movable[int(i)], movable[int(j)]
                trial[a], trial[b] = trial[b], trial[a]
            else:
                continue
            trial_machines = tuple(netmodel.machine_of(p) for p in trial)
            t_trial = evaluator.evaluate(trial_machines)
            accept = t_trial <= current_time or (
                rng.random() < math.exp((current_time - t_trial) / temp)
            )
            if accept:
                assignment = trial
                current_time = t_trial
                if t_trial < best.time:
                    best = Mapping(tuple(trial), trial_machines, t_trial)
            temp *= cooling
        return best


register_mapper("anneal", AnnealingMapper, overwrite=True)
