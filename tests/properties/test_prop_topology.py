"""Property-based tests of topology-derived communication costs.

Two pinned invariants:

- For every machine pair, the cluster's transfer time equals the cost of
  the pair's **deepest common ancestor** level, computed by an
  independent reference walk of the tree (exact float equality — both
  sides run the same Hockney formula on the same protocol).
- A degenerate one-level topology (root over machine leaves) reproduces
  the flat default-protocol mesh bit-for-bit, down to engine makespans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Cluster,
    Machine,
    Protocol,
    TCP_100MBIT,
    Topology,
    TopologyNode,
    uniform_network,
)
from repro.core.netmodel import NetworkModel
from repro.mpi import run_mpi

NBYTES = st.sampled_from([0, 1, 1024, 1 << 16, 1 << 20])


@st.composite
def bound_topologies(draw, max_machines=8):
    """A random protocol-annotated hierarchy bound to a cluster."""
    n = draw(st.integers(2, max_machines))
    names = [f"m{i}" for i in range(n)]
    counter = [0]

    def fresh_protocol():
        counter[0] += 1
        return Protocol(
            f"p{counter[0]}",
            latency=draw(st.floats(1e-6, 1e-3)),
            bandwidth=draw(st.floats(1e6, 1e9)),
        )

    def build(group):
        if len(group) == 1:
            return TopologyNode.leaf(group[0])
        parts_count = draw(st.integers(2, len(group)))
        cuts = sorted(draw(st.sets(
            st.integers(1, len(group) - 1),
            min_size=parts_count - 1, max_size=parts_count - 1,
        )))
        bounds = [0, *cuts, len(group)]
        children = tuple(
            build(group[lo:hi]) for lo, hi in zip(bounds, bounds[1:])
        )
        counter[0] += 1
        return TopologyNode(name=f"lvl{counter[0]}",
                            protocols=(fresh_protocol(),),
                            children=children)

    topology = Topology(build(names))
    machines = [Machine(name=name, speed=100.0) for name in names]
    cluster = Cluster(machines, default_protocols=(TCP_100MBIT,),
                      topology=topology)
    return cluster


def reference_dca_protocols(topology, a, b):
    """Independent DCA walk: common prefix of the leaf paths by name."""
    paths = {}
    for path, node in topology.root.walk():
        if node.is_leaf:
            paths[node.machine] = path
    pa, pb = paths[f"m{a}"], paths[f"m{b}"]
    node = topology.root
    for x, y in zip(pa, pb):
        if x != y:
            break
        node = node.children[x]
    return node.protocols


class TestDCACost:
    @given(cluster=bound_topologies(), nbytes=NBYTES)
    @settings(max_examples=60, deadline=None)
    def test_pair_cost_is_dca_level_cost(self, cluster, nbytes):
        topology = cluster.topology
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        for a in range(cluster.size):
            for b in range(cluster.size):
                if a == b:
                    continue
                protocols = reference_dca_protocols(topology, a, b)
                expected = min(p.transfer_time(nbytes) for p in protocols)
                assert cluster.transfer_time(a, b, nbytes) == expected
                assert netmodel.transfer_time(a, b, nbytes) == expected

    @given(cluster=bound_topologies())
    @settings(max_examples=30, deadline=None)
    def test_distance_is_a_metric_on_leaves(self, cluster):
        topology = cluster.topology
        for a in range(cluster.size):
            assert topology.distance(a, a) == 0
            for b in range(cluster.size):
                assert topology.distance(a, b) == topology.distance(b, a)
                if a != b:
                    assert topology.distance(a, b) >= 2


def one_level_topology(n):
    return Topology(TopologyNode(
        name="lan", kind="subnet", protocols=(TCP_100MBIT,),
        children=tuple(TopologyNode.leaf(f"m{i:02d}") for i in range(n)),
    ))


class TestDegenerateFlatEquivalence:
    @given(n=st.integers(2, 9), nbytes=NBYTES)
    @settings(max_examples=40, deadline=None)
    def test_one_level_equals_flat_mesh_exactly(self, n, nbytes):
        flat = uniform_network([100.0] * n)
        hier = uniform_network([100.0] * n)
        hier.set_topology(one_level_topology(n))
        for a in range(n):
            for b in range(n):
                assert hier.transfer_time(a, b, nbytes) == \
                    flat.transfer_time(a, b, nbytes)
                assert hier.link(a, b).effective_latency() == \
                    flat.link(a, b).effective_latency()

    @pytest.mark.parametrize("algorithm", ["binomial", "hierarchical", "auto"])
    def test_engine_makespans_identical(self, algorithm):
        """Virtual time of a bcast is bit-identical on the degenerate
        topology — including the hierarchical algorithm, which finds no
        split and degrades to one binomial tree."""
        def app(env):
            value = "x" if env.rank == 1 else None
            env.comm_world.bcast(value, root=1, nbytes=1 << 16,
                                 algorithm=algorithm)
            return env.wtime()

        n = 6
        flat = uniform_network([100.0] * n)
        hier = uniform_network([100.0] * n)
        hier.set_topology(one_level_topology(n))
        res_flat = run_mpi(app, flat, timeout=30)
        res_hier = run_mpi(app, hier, timeout=30)
        assert res_flat.results == res_hier.results
        assert res_flat.makespan == res_hier.makespan
