"""Ablation — multi-protocol communication (the paper's first challenge).

Standard MPI uses one protocol per pair (MPICH's shm+TCP being the noted
exception); Nexus and Madeleine showed the value of choosing per pair.
Our substrate supports multiple protocols per link with fastest-per-message
selection.  This bench runs a communication-heavy exchange on a network
where some pairs also share a fast interconnect, against the same network
pinned to TCP-only.
"""

import numpy as np
import pytest

from repro.cluster import multiprotocol_network
from repro.mpi import run_mpi
from repro.util.tables import Table

NBYTES = 6_250_000  # 0.5 s per message over 100 Mbit
ROUNDS = 4
FAST_PAIRS = ((0, 1), (2, 3), (6, 7))


def exchange(env):
    """Neighbour exchange along the fast pairs, repeated ROUNDS times."""
    partner = {0: 1, 1: 0, 2: 3, 3: 2, 6: 7, 7: 6}.get(env.rank)
    if partner is None:
        return env.wtime()
    c = env.comm_world
    payload = np.zeros(NBYTES // 8)
    for k in range(ROUNDS):
        c.sendrecv(payload, partner, k, partner, k)
    return env.wtime()


def _compare():
    multi = multiprotocol_network(fast_pairs=FAST_PAIRS)
    t_multi = run_mpi(exchange, multi).makespan

    pinned = multiprotocol_network(fast_pairs=FAST_PAIRS)
    for i, j in FAST_PAIRS:
        pinned.link(i, j).pin("tcp-100mbit")
    t_tcp = run_mpi(exchange, pinned).makespan
    return t_multi, t_tcp


def test_ablation_protocol(benchmark, report):
    t_multi, t_tcp = benchmark.pedantic(_compare, rounds=1, iterations=1)

    t = Table("configuration", "exchange time (s)",
              title="Ablation — per-pair fastest-protocol selection")
    t.add("TCP only (standard MPI)", t_tcp)
    t.add("multi-protocol (HMPI direction)", t_multi)
    report.emit(t.render())
    report.emit(f"multi-protocol advantage: {t_tcp / t_multi:.2f}x")

    # The fast interconnect is 8x the bandwidth of TCP; with latency and
    # barriers the end-to-end advantage should still be >4x.
    assert t_tcp / t_multi > 4.0
