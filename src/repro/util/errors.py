"""Exception hierarchy shared by every subsystem of the HMPI reproduction.

The hierarchy mirrors the layering of the library: the cluster simulator,
the MPI substrate, the performance-model language, and the HMPI runtime each
raise their own subclass of :class:`ReproError`, so callers can catch at the
granularity they need (``except MPIError`` for substrate problems, ``except
ReproError`` for anything raised by this package).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OptionError",
    "ClusterError",
    "MPIError",
    "MPICommError",
    "MPIGroupError",
    "MPITruncationError",
    "DeadlockError",
    "MachineFailure",
    "RankFailedError",
    "LinkFaultError",
    "OperationTimeoutError",
    "PMDLError",
    "PMDLSyntaxError",
    "PMDLSemanticError",
    "PMDLAnalysisError",
    "PMDLRuntimeError",
    "HMPIError",
    "HMPIStateError",
    "HMPIRepairError",
    "MappingError",
    "CampaignError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class OptionError(ReproError):
    """An entry-point option (``engine=``, ``ft=``, ...) has an unknown or
    malformed value.

    Raised by the shared option resolvers (see :mod:`repro.util.options`)
    so every entry point — ``run_mpi``, ``run_hmpi``, the session facade,
    the CLI — reports bad configuration the same way.  Domain-specific
    selectors keep their established types (``mapper=`` raises
    :class:`MappingError`, collective ``algorithm=`` raises
    :class:`MPICommError`) but share the same message shape.
    """


class ClusterError(ReproError):
    """Invalid cluster topology or machine/link configuration."""


class MPIError(ReproError):
    """Base class for errors raised by the simulated MPI substrate."""


class MPICommError(MPIError):
    """Invalid communicator usage (bad rank, freed comm, wrong context)."""


class MPIGroupError(MPIError):
    """Invalid group construction or accessor usage."""


class MPITruncationError(MPIError):
    """A receive buffer was too small for the matched message."""


class DeadlockError(MPIError):
    """The deadlock watchdog concluded no rank can make progress."""


class MachineFailure(MPIError):
    """Raised inside a rank whose machine failed (fault injection)."""

    def __init__(self, machine: str, vtime: float):
        super().__init__(f"machine {machine!r} failed at virtual time {vtime:.6f}")
        self.machine = machine
        self.vtime = vtime


class RankFailedError(MPIError):
    """A point-to-point or collective operation involved a failed rank.

    This is the *survivor-side* failure signal: the rank that raises it is
    alive, but a peer it communicates with (or waits on) lives on a machine
    that died.  Unlike :class:`DeadlockError` it is local and typed — it
    names the failed world ranks so the application (or the HMPI runtime's
    ``group_repair``) can exclude them and continue.
    """

    def __init__(self, ranks, machine: str | None = None,
                 vtime: float | None = None, op: str = "operation"):
        self.ranks = tuple(sorted(set(ranks)))
        self.machine = machine
        self.vtime = vtime
        where = f" on machine {machine!r}" if machine else ""
        when = f" (failed at virtual time {vtime:.6f})" if vtime is not None else ""
        super().__init__(
            f"{op} involves failed rank(s) {list(self.ranks)}{where}{when}"
        )


class LinkFaultError(MPIError):
    """A transient link fault persisted past the retransmission budget."""

    def __init__(self, src: int, dst: int, attempts: int):
        super().__init__(
            f"message {src}->{dst} dropped {attempts} times; "
            f"retransmission budget exhausted"
        )
        self.src = src
        self.dst = dst
        self.attempts = attempts


class OperationTimeoutError(MPIError):
    """A per-operation virtual-time timeout elapsed before completion."""

    def __init__(self, op: str, timeout: float, deadline: float):
        super().__init__(
            f"{op} timed out after {timeout:g} virtual seconds "
            f"(deadline {deadline:.6f})"
        )
        self.timeout = timeout
        self.deadline = deadline


class PMDLError(ReproError):
    """Base class for performance-model definition language errors."""


class PMDLSyntaxError(PMDLError):
    """Tokenizer/parser error, carrying source position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PMDLSemanticError(PMDLError):
    """Model is syntactically valid but semantically inconsistent."""


class PMDLAnalysisError(PMDLSemanticError):
    """The static analyzer proved a defect in the model.

    Carries the machine-readable :class:`~repro.perfmodel.diagnostics.Diagnostic`
    objects so tooling can report codes/lines without re-parsing the message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)


class PMDLRuntimeError(PMDLError):
    """Error while evaluating a compiled performance model."""


class HMPIError(ReproError):
    """Base class for HMPI runtime errors."""


class HMPIStateError(HMPIError):
    """An HMPI operation was called in the wrong runtime state."""


class HMPIRepairError(HMPIError):
    """Group repair is impossible (host dead, or too few survivors)."""


class MappingError(HMPIError):
    """No feasible mapping of abstract processors to machines exists."""


class CampaignError(OptionError):
    """A campaign config/spec is malformed (unknown axis, bad driver,
    invalid scenario).  Subclasses :class:`OptionError` so CLI entry
    points surface it as a usage error (exit code 2), not a traceback."""
