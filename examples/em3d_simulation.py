#!/usr/bin/env python3
"""EM3D: the paper's irregular application (Section 3) end to end.

Simulates interacting electric and magnetic fields on a 3-D object
decomposed into sub-bodies of very different sizes, then compares the
standard-MPI group (Figure 3) against the HMPI-created group (Figure 5)
on the paper's 9-workstation network.

Run:  python examples/em3d_simulation.py
"""

from repro.apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from repro.cluster import PAPER_SPEEDS, paper_network
from repro.util.tables import Table


def main():
    k = 100         # benchmark granularity: one unit == k nodal values
    niter = 8       # simulation steps
    problem = generate_problem(p=9, total_nodes=27_000, seed=42)

    print("machine speeds:", list(PAPER_SPEEDS))
    print("sub-body sizes:", problem.d.tolist())
    print("boundary deps (total values exchanged):", int(problem.dep.sum()))
    print()

    mpi = run_em3d_mpi(paper_network(), problem, niter=niter, k=k)
    # Two HMPI process slots per machine: the runtime may co-locate
    # sub-bodies on fast machines and skip the speed-9 workstation.
    hmpi = run_em3d_hmpi(paper_network(), problem, niter=niter, k=k,
                         procs_per_machine=2)

    t = Table("variant", "group (world ranks)", "time (virtual s)",
              title="EM3D on the paper network")
    t.add("MPI", str(mpi.group_world_ranks), mpi.algorithm_time)
    t.add("HMPI", str(hmpi.group_world_ranks), hmpi.algorithm_time)
    print(t.render())
    print()
    print(f"HMPI_Timeof prediction: {hmpi.predicted_time:.4f} virtual s "
          f"(measured {hmpi.algorithm_time:.4f})")
    print(f"speedup: {mpi.algorithm_time / hmpi.algorithm_time:.2f}x "
          f"(paper Figure 9(b): ~1.5x)")
    assert mpi.checksum == hmpi.checksum, "placement changed the physics!"
    print(f"field checksum identical across variants: {mpi.checksum:.6f}")

    # How the selection reads: sub-body sizes vs machine speeds.
    print("\nHMPI assignment (sub-body -> machine):")
    for sub, machine in enumerate(hmpi.group_machines):
        speed = PAPER_SPEEDS[machine]
        print(f"  sub-body {sub} ({problem.d[sub]:5d} nodes) -> "
              f"ws{machine:02d} (speed {speed:g})")


if __name__ == "__main__":
    main()
