"""Tokenizer for the PMDL.

Hand-written scanner: identifiers/keywords, integer and floating literals,
longest-match punctuation, ``//`` and ``/* */`` comments, precise
line/column tracking for error messages.
"""

from __future__ import annotations

from ..util.errors import PMDLSyntaxError
from .tokens import KEYWORDS, PUNCTUATION, Token, TokenKind

__all__ = ["tokenize"]

_PUNCT_BY_LENGTH = sorted(PUNCTUATION, key=len, reverse=True)


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into a token list terminated by an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> PMDLSyntaxError:
        return PMDLSyntaxError(msg, line, col)

    while i < n:
        c = source[i]
        # whitespace
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        # identifiers / keywords
        if c.isalpha() or c == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # numeric literals
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                ch = source[i]
                if ch.isdigit():
                    i += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif ch in "eE" and not seen_exp and i > start:
                    # exponent must be followed by digits or sign+digits
                    j = i + 1
                    if j < n and source[j] in "+-":
                        j += 1
                    if j < n and source[j].isdigit():
                        seen_exp = True
                        i = j
                    else:
                        break
                else:
                    break
            text = source[start:i]
            kind = TokenKind.FLOAT if (seen_dot or seen_exp) else TokenKind.INT
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        # punctuation (longest match)
        for punct in _PUNCT_BY_LENGTH:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, line, col))
                i += len(punct)
                col += len(punct)
                break
        else:
            raise error(f"unexpected character {c!r}")

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
