"""Fault-tolerant Jacobi: group repair + checkpoint/rollback.

The driver runs the panel Jacobi solver on an HMPI group while machines
die under it (per the cluster's fault schedule) and links drop messages
(per an attached transient-fault schedule).  Members checkpoint their
panels to the host's stable storage every ``checkpoint_every`` completed
sweeps; when a typed failure surfaces — :class:`RankFailedError` from a
halo exchange, an :class:`OperationTimeoutError`, a collateral wake —
the survivors call ``group_repair``, roll back to the latest *complete*
checkpoint, re-partition the interior rows over the repaired group, and
continue.  Because every decomposition of the Jacobi sweep computes the
same grid, the final result must be **bitwise identical** to a fault-free
run (and to the serial reference) no matter when or how often the group
was repaired — the invariant the differential fault-injection campaign in
``tests/ft`` asserts.

Free processes loop in ``group_create`` so the repair can draft them as
replacements; the host dismisses them with ``release_free`` once the
solve completes (or becomes impossible, in which case every rank returns
a typed failure outcome rather than hanging).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...cluster.network import Cluster
from ...core.checkpoint import CheckpointStore, charged_load, charged_save
from ...core.mapper import Mapper
from ...core.runtime import HMPI, run_hmpi
from ...mpi.engine import FTConfig
from ...util.errors import (
    HMPIRepairError,
    MappingError,
    OperationTimeoutError,
    RankFailedError,
    ReproError,
)
from .model import bind_jacobi_model
from .solver import initial_grid, partition_rows

__all__ = ["JacobiFTResult", "run_jacobi_ft"]

_KEY = "jacobi-grid"


@dataclass
class JacobiFTResult:
    """Outcome of a fault-tolerant Jacobi run.

    ``grid`` is None when the run ended with a typed failure (``error``
    holds the host's outcome) — the campaign's contract is "repaired
    result identical to fault-free, or a typed error", never a hang.
    """

    grid: np.ndarray | None
    makespan: float
    repairs: int
    dead_ranks: tuple[int, ...]
    final_world_ranks: tuple[int, ...]
    rows: list[int] = field(default_factory=list)
    checkpoint_saves: int = 0
    checkpoint_restores: int = 0
    error: str | None = None


def _restore_grid(n: int, seed: int, parts) -> np.ndarray:
    """Reassemble the full grid from checkpoint parts.

    Parts are ``(start_row, panel_interior)`` pairs; they may come from
    any partition (the pre-failure group's), so reassembly goes by the
    recorded start rows, not by the current partition.
    """
    grid = initial_grid(n, seed)
    for start, block in parts:
        grid[start:start + len(block), :] = block
    return grid


def _sweep_resumable(hmpi: HMPI, gid, store: CheckpointStore, n: int,
                     niter: int, k: int, seed: int,
                     checkpoint_every: int) -> np.ndarray | None:
    """One group epoch: restore, sweep to completion, gather.

    Raises the typed failure errors out to the caller, which repairs and
    re-enters with the new group.  Returns the assembled grid at the host
    (group rank 0), None at other members.
    """
    comm = gid.comm
    me = comm.rank
    p = comm.size
    if me == 0:
        done = store.latest_complete(_KEY)
        done = 0 if done is None else done
        # Drop the failed epoch's partial future: its parts may use a
        # different partition and must not pollute resumed saves.
        store.discard_after(_KEY, done)
        rows = partition_rows(n, [1.0] * p)
        header = (done, rows)
    else:
        header = None
    done, rows = comm.bcast(header, root=0)
    if done > 0:
        grid = _restore_grid(n, seed, charged_load(hmpi, store, _KEY, done))
    else:
        grid = initial_grid(n, seed)
    start = 1 + sum(rows[:me])
    my_rows = rows[me]
    panel = grid[start - 1:start + my_rows + 1].copy()
    conc = gid.my_concurrency

    sweep_t0 = hmpi.env.wtime()
    ckpt_cost = 0.0
    for it in range(done, niter):
        if me > 0:
            comm.send(panel[1].copy(), me - 1, tag=it)
        if me < p - 1:
            comm.send(panel[-2].copy(), me + 1, tag=it)
        if me > 0:
            panel[0] = comm.recv(me - 1, tag=it)
        if me < p - 1:
            panel[-1] = comm.recv(me + 1, tag=it)
        interior = 0.25 * (panel[:-2, 1:-1] + panel[2:, 1:-1]
                           + panel[1:-1, :-2] + panel[1:-1, 2:])
        panel[1:-1, 1:-1] = interior
        hmpi.compute(my_rows * n / k, conc)
        completed = it + 1
        if completed % checkpoint_every == 0 or completed == niter:
            ckpt_cost += charged_save(hmpi, store, _KEY, completed, me, p,
                                      (start, panel[1:-1]))

    # Close the prediction loop: the model prices one sweep, so report
    # the per-iteration time of this epoch (checkpoint charges excluded —
    # the model does not price them).
    if me == 0 and niter > done:
        from .model import jacobi_model
        elapsed = hmpi.env.wtime() - sweep_t0 - ckpt_cost
        hmpi.record_measured(jacobi_model(), elapsed / (niter - done))

    panels = comm.gather(panel[1:-1], root=0)
    # Success token: a member must not leave while the host might still
    # need it as a repair partner (a death during the gather surfaces at
    # the host only; members blocked here get the collateral typed wake
    # and re-enter repair with everyone else).
    comm.bcast(True, root=0)
    if me != 0:
        return None
    out = initial_grid(n, seed)
    row = 1
    for block in panels:
        out[row:row + len(block), :] = block
        row += len(block)
    return out


def run_jacobi_ft(
    cluster: Cluster,
    n: int,
    p: int,
    niter: int,
    k: int = 100,
    seed: int = 0,
    checkpoint_every: int = 1,
    mapper: "Mapper | None" = None,
    ft: FTConfig | None = None,
    max_repairs: int = 8,
    timeout: float | None = 120.0,
    obs=None,
    *,
    engine: str | None = None,
    timeof_backend: str | None = None,
) -> JacobiFTResult:
    """Run the Jacobi solver to completion through machine failures.

    ``p`` is the intended group size; each repair re-targets
    ``min(p, survivors)``.  ``max_repairs`` bounds the repair attempts so
    a pathological schedule terminates with a typed outcome instead of
    looping.  Faults come from the cluster itself: schedule machine
    deaths with :func:`repro.cluster.inject_faults` and transient drops
    with :func:`repro.cluster.attach_transient_faults` before calling.
    An :class:`repro.obs.Observability` passed as ``obs`` collects
    metrics, runtime spans (including repairs and checkpoint traffic),
    the engine trace, and per-sweep prediction-accuracy pairs.
    """
    if p > cluster.size:
        raise ReproError(f"need {p} machines, cluster has {cluster.size}")
    if checkpoint_every < 1:
        raise ReproError("checkpoint_every must be >= 1")
    store = CheckpointStore()

    def model_for(navail: int):
        size = max(2, min(p, navail))
        rows = partition_rows(n, [1.0] * size)
        return bind_jacobi_model(size, k, n, rows)

    def app(hmpi: HMPI):
        repairs = 0
        gid = None
        try:
            while True:
                if gid is None:
                    created = hmpi.group_create(
                        model_for if hmpi.is_host() else None, mapper,
                    )
                    if created is None:
                        return ("released", repairs)
                    gid = created if created.is_member else None
                    continue
                try:
                    grid = _sweep_resumable(hmpi, gid, store, n, niter, k,
                                            seed, checkpoint_every)
                except (RankFailedError, OperationTimeoutError) as exc:
                    repairs += 1
                    if repairs > max_repairs:
                        raise HMPIRepairError(
                            f"gave up after {max_repairs} repairs"
                        ) from exc
                    gid = hmpi.group_repair(
                        gid, model_for,
                        dead=tuple(getattr(exc, "ranks", ())),
                    )
                    if not gid.is_member:
                        gid = None  # demoted to the free pool
                    continue
                if hmpi.is_host():
                    hmpi.release_free()
                    return ("done", repairs, grid, gid.world_ranks)
                return ("member-done", repairs)
        except (HMPIRepairError, MappingError) as exc:
            if hmpi.is_host():
                try:
                    hmpi.release_free()
                except Exception:
                    pass
            return ("failed", repairs, str(exc))

    result = run_hmpi(app, cluster, timeout=timeout, ft=ft, obs=obs,
                      engine=engine, timeof_backend=timeof_backend)
    host_out = result.results[0]
    dead: list[int] = []
    for r, exc in enumerate(result.exceptions):
        if exc is not None:
            dead.append(r)
    if host_out is not None and host_out[0] == "done":
        _, repairs, grid, world_ranks = host_out
        return JacobiFTResult(
            grid=grid, makespan=result.makespan, repairs=repairs,
            dead_ranks=tuple(dead), final_world_ranks=tuple(world_ranks),
            rows=partition_rows(n, [1.0] * len(world_ranks)),
            checkpoint_saves=store.saves,
            checkpoint_restores=store.restores,
        )
    if host_out is not None and host_out[0] == "failed":
        error = host_out[2]
    elif result.exception_of(0) is not None:
        error = f"host died: {type(result.exception_of(0)).__name__}"
    else:
        error = f"host outcome: {host_out!r}"
    return JacobiFTResult(
        grid=None, makespan=result.makespan,
        repairs=host_out[1] if host_out else 0,
        dead_ranks=tuple(dead), final_world_ranks=(),
        checkpoint_saves=store.saves, checkpoint_restores=store.restores,
        error=error,
    )
