"""Execution tracing and Gantt rendering."""

import numpy as np
import pytest

from repro.cluster import uniform_network
from repro.mpi import Tracer, run_mpi
from repro.util.gantt import render_gantt, utilization


def traced_run(app, cluster, **kw):
    tracer = Tracer()
    result = run_mpi(app, cluster, tracer=tracer, **kw)
    return tracer, result


class TestComputeEvents:
    def test_compute_interval_recorded(self, pair_cluster):
        def app(env):
            env.compute(100.0)

        tracer, _ = traced_run(app, pair_cluster)
        events = tracer.of_rank(0)
        assert len(events) == 1
        e = events[0]
        assert e.kind == "compute"
        assert e.t0 == 0.0
        assert e.t1 == pytest.approx(1.0)  # 100 units at speed 100
        assert e.volume == 100.0

    def test_total_compute_seconds(self, pair_cluster):
        def app(env):
            env.compute(50.0)
            env.compute(50.0)

        tracer, _ = traced_run(app, pair_cluster)
        assert tracer.total_compute_seconds(0) == pytest.approx(1.0)
        assert tracer.total_compute_seconds(1) == pytest.approx(2.0)


class TestMessageEvents:
    def test_send_and_recv_recorded(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(1000), 1, tag=5)
            else:
                c.recv(0, 5)

        tracer, _ = traced_run(app, pair_cluster)
        sends = tracer.by_kind("send")
        recvs = tracer.by_kind("recv")
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].rank == 0 and sends[0].peer == 1
        assert sends[0].nbytes == 8000 and sends[0].tag == 5
        assert recvs[0].rank == 1 and recvs[0].peer == 0
        # arrival is after departure
        assert recvs[0].t1 >= sends[0].t0

    def test_total_bytes_sent(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(100), 1)
                c.send(np.zeros(100), 1)
            else:
                c.recv(0)
                c.recv(0)

        tracer, _ = traced_run(app, pair_cluster)
        assert tracer.total_bytes_sent(0) == 1600
        assert tracer.total_bytes_sent() == 1600


class TestTraceQueries:
    def test_makespan_matches_run(self, small_cluster):
        def app(env):
            env.compute(10.0 * (env.rank + 1))
            env.comm_world.barrier()

        tracer, result = traced_run(app, small_cluster)
        assert tracer.makespan() == pytest.approx(result.makespan, rel=0.01)

    def test_nranks(self, small_cluster):
        def app(env):
            env.compute(1.0)

        tracer, _ = traced_run(app, small_cluster)
        assert tracer.nranks() == 4

    def test_no_tracer_no_events(self, pair_cluster):
        def app(env):
            env.compute(1.0)

        result = run_mpi(app, pair_cluster)  # no tracer argument
        assert result.makespan > 0


class TestGantt:
    def test_render_contains_all_ranks(self, small_cluster):
        def app(env):
            env.compute(10.0)
            env.comm_world.barrier()

        tracer, _ = traced_run(app, small_cluster)
        chart = render_gantt(tracer, width=40)
        for rank in range(4):
            assert f"rank {rank:2d} |" in chart
        assert "#" in chart  # some computation visible

    def test_busy_rank_shows_more_compute(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            env.compute(100.0 if env.rank == 0 else 1.0)
            env.comm_world.barrier()

        tracer, _ = traced_run(app, cluster)
        chart = render_gantt(tracer, width=50)
        row0, row1 = chart.splitlines()[:2]
        assert row0.count("#") > row1.count("#")

    def test_empty_trace(self):
        assert "empty" in render_gantt(Tracer())

    def test_utilization(self, pair_cluster):
        def app(env):
            env.compute(100.0)       # rank 0: 1 s, rank 1: 2 s
            env.comm_world.barrier()

        tracer, _ = traced_run(app, pair_cluster)
        assert utilization(tracer, 1) == pytest.approx(1.0, rel=0.01)
        assert utilization(tracer, 0) == pytest.approx(0.5, rel=0.02)
