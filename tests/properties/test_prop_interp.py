"""Property-based tests of the PMDL expression evaluator against Python
reference semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel.interp import Environment, Interpreter
from repro.perfmodel.parser import parse_expression

interp = Interpreter()

small_ints = st.integers(-50, 50)
pos_ints = st.integers(1, 50)


def ev(src, env=None):
    return interp.eval(parse_expression(src), env or Environment())


class TestArithmeticAgainstPython:
    @given(small_ints, small_ints)
    def test_addition(self, a, b):
        assert ev(f"({a}) + ({b})") == a + b

    @given(small_ints, small_ints)
    def test_multiplication(self, a, b):
        assert ev(f"({a}) * ({b})") == a * b

    @given(small_ints, pos_ints)
    def test_division_value(self, a, b):
        got = ev(f"({a}) / ({b})")
        assert got == (a // b if a % b == 0 else a / b)

    @given(small_ints, pos_ints)
    def test_c_modulo_sign_of_dividend(self, a, b):
        got = ev(f"({a}) % ({b})")
        # C: (a/b)*b + a%b == a with trunc division
        q = abs(a) // b * (1 if a >= 0 else -1)
        assert q * b + got == a
        assert abs(got) < b

    @given(small_ints, small_ints)
    def test_comparisons(self, a, b):
        assert ev(f"({a}) < ({b})") == int(a < b)
        assert ev(f"({a}) == ({b})") == int(a == b)
        assert ev(f"({a}) >= ({b})") == int(a >= b)

    @given(small_ints)
    def test_unary_minus_involution(self, a):
        assert ev(f"-(-({a}))") == a


class TestExpressionStructure:
    @given(small_ints, small_ints, small_ints)
    def test_precedence_matches_python(self, a, b, c):
        assert ev(f"({a}) + ({b}) * ({c})") == a + b * c
        assert ev(f"(({a}) + ({b})) * ({c})") == (a + b) * c

    @given(small_ints, small_ints, small_ints)
    def test_ternary(self, cond, a, b):
        assert ev(f"({cond}) ? ({a}) : ({b})") == (a if cond else b)

    @given(st.booleans(), st.booleans())
    def test_logical_ops(self, x, y):
        a, b = int(x), int(y)
        assert ev(f"{a} && {b}") == int(x and y)
        assert ev(f"{a} || {b}") == int(x or y)


class TestEnvironment:
    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c", "x"]),
        small_ints, min_size=1,
    ))
    def test_lookup_returns_bound_values(self, bindings):
        env = Environment(bindings)
        for name, value in bindings.items():
            assert ev(name, env) == value

    @given(small_ints)
    def test_scope_shadowing(self, v):
        env = Environment({"x": v})
        env.push()
        env.declare("x", v + 1)
        assert env.lookup("x") == v + 1
        env.pop()
        assert env.lookup("x") == v
