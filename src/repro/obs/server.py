"""Live monitoring endpoint over the metrics registry and event bus.

:class:`MonitorServer` wraps a stdlib :class:`ThreadingHTTPServer` in a
daemon thread and serves four read-only views of a *running* session or
campaign — the ops surface the ROADMAP's HMPI-as-a-service item asks
for, built so the future job server lands on live telemetry:

========== =============================================================
Endpoint   Serves
========== =============================================================
/metrics   OpenMetrics text of the current metrics snapshot
/snapshot  The raw snapshot as JSON (schema-versioned, see
           ``METRICS_SCHEMA_VERSION``)
/events    NDJSON tail of the telemetry ring buffer (``?n=50`` caps it)
/healthz   ``{"status": "ok", "uptime_seconds": ...}`` liveness probe
========== =============================================================

Everything is pull-based and lock-light: a scrape calls the snapshot
function / bus tail under their own locks, so attaching a monitor to a
hot simulation never blocks the simulated ranks for longer than one
snapshot.  Port 0 (the default) lets the OS pick a free port —
``server.port`` reports the bound one.

The route logic itself lives in :class:`MonitorRoutes`, transport-free,
so the asyncio job server (:mod:`repro.serve`) serves the identical
``/metrics``/``/snapshot``/``/events``/``/healthz`` surface without a
second ThreadingHTTPServer.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlparse

from .openmetrics import render_openmetrics

__all__ = ["MonitorRoutes", "MonitorServer", "EVENTS_TAIL_CAP"]

_OPENMETRICS_CTYPE = ("application/openmetrics-text; version=1.0.0; "
                      "charset=utf-8")

#: Largest accepted ``/events?n=`` value.  The ring buffer is far smaller
#: (default 4096), so anything beyond this is a malformed scrape, not a
#: bigger tail — reject it instead of materialising a huge request.
EVENTS_TAIL_CAP = 1_000_000


class MonitorRoutes:
    """Transport-free monitoring routes: path → ``(status, ctype, body)``.

    Shared by :class:`MonitorServer` (threaded, stdlib http.server) and
    the asyncio job server in :mod:`repro.serve`, so both expose the
    same scrape surface with the same parsing and error behaviour.
    """

    def __init__(self, *,
                 snapshot_fn: Callable[[], dict[str, Any]] | None = None,
                 telemetry: Any = None,
                 started: float | None = None,
                 health_extra: Callable[[], dict[str, Any]] | None = None):
        self.snapshot_fn = snapshot_fn
        self.telemetry = telemetry
        self.started = time.monotonic() if started is None else started
        self.health_extra = health_extra

    def handle(self, path: str) -> tuple[int, str, str] | None:
        """Serve ``path`` (with query string); None when unrouted."""
        url = urlparse(path)
        route = url.path.rstrip("/") or "/"
        if route == "/healthz":
            doc = {
                "status": "ok",
                "uptime_seconds": round(time.monotonic() - self.started, 3),
            }
            if self.health_extra is not None:
                doc.update(self.health_extra())
            return 200, "application/json", json.dumps(doc) + "\n"
        if route == "/metrics" and self.snapshot_fn is not None:
            return (200, _OPENMETRICS_CTYPE,
                    render_openmetrics(self.snapshot_fn()))
        if route == "/snapshot" and self.snapshot_fn is not None:
            return (200, "application/json",
                    json.dumps(self.snapshot_fn(), sort_keys=True) + "\n")
        if route == "/events" and self.telemetry is not None:
            qs = parse_qs(url.query, keep_blank_values=True)
            n = None
            if "n" in qs:
                # Strict: non-integer, negative, or absurdly huge values
                # are a client error, reported as 400 — never an
                # exception in the handler thread.
                try:
                    n = int(qs["n"][0])
                except ValueError:
                    return 400, "text/plain", "bad ?n= parameter\n"
                if n < 0 or n > EVENTS_TAIL_CAP:
                    return (400, "text/plain",
                            f"?n= must be in [0, {EVENTS_TAIL_CAP}]\n")
            events = self.telemetry.tail(n)
            body = "".join(e.to_json() + "\n" for e in events)
            return 200, "application/x-ndjson", body
        return None


class MonitorServer:
    """Serve ``/metrics``, ``/snapshot``, ``/events``, ``/healthz``.

    Parameters
    ----------
    metrics:
        A :class:`MetricsRegistry` (or anything with ``snapshot()``).
        Ignored when ``snapshot_fn`` is given.
    telemetry:
        An :class:`~repro.obs.telemetry.EventBus`; ``/events`` returns
        its tail as NDJSON.  Optional — without it ``/events`` is 404.
    snapshot_fn:
        0-arg callable returning the snapshot dict; overrides
        ``metrics`` (e.g. ``Observability.snapshot`` to fold selection
        stats in).
    host / port:
        Bind address.  ``port=0`` picks a free port.
    """

    def __init__(self, *, metrics: Any = None,
                 telemetry: Any = None,
                 snapshot_fn: Callable[[], dict[str, Any]] | None = None,
                 host: str = "127.0.0.1", port: int = 0):
        if snapshot_fn is None and metrics is not None:
            snapshot_fn = metrics.snapshot
        if snapshot_fn is None and telemetry is None:
            raise ValueError(
                "MonitorServer needs metrics, snapshot_fn, or telemetry")
        self._routes = MonitorRoutes(
            snapshot_fn=snapshot_fn, telemetry=telemetry)
        self._thread: threading.Thread | None = None

        monitor = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

            def _send(self, status: int, ctype: str, body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                try:
                    handled = monitor._routes.handle(self.path)
                    if handled is None:
                        self._send(404, "text/plain", "not found\n")
                    else:
                        self._send(*handled)
                except BrokenPipeError:  # client went away mid-scrape
                    pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        if self._thread is not None:
            raise RuntimeError("MonitorServer already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-monitor", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5.0)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
