"""Text Gantt charts from execution traces.

Renders a :class:`repro.mpi.tracing.Tracer`'s events as one row of fixed
width per rank: ``#`` for computation, ``s`` for send activity, ``.`` for
waiting in a receive, ``=`` for a collective's extent, ``r`` for
retransmission backoff, ``R`` for group repair, ``X`` for the rank's
death, space for idle.  Meant for terminals, docstrings and tests — a
ten-second way to *see* why one group beats another, or where a fault
campaign spent its time.

>>> print(render_gantt(tracer, width=60))          # doctest: +SKIP
rank 0 |######s.....######                        | 12.3s
rank 1 |..........########################        | 12.3s
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.tracing import Tracer

__all__ = ["render_gantt", "utilization"]

#: Priority of glyphs when activities overlap within one cell.  Deaths
#: and repairs outrank everything (they are the rare events worth
#: seeing); collectives rank *below* point-to-point activity so their
#: ``=`` only fills the wait portions nothing finer-grained explains.
_GLYPHS = {
    "compute": "#",
    "send": "s",
    "recv": ".",
    "coll": "=",
    "retransmit": "r",
    "repair": "R",
    "death": "X",
}
_PRIORITY = {"X": 6, "R": 5, "#": 4, "r": 3, "s": 2, ".": 1, "=": 0.5, " ": 0}

_LEGEND = ("        (# compute, s send, . recv-wait, = collective-wait, "
           "r retransmit, R repair, X death, blank idle)")


def _t_start(tracer: "Tracer") -> float:
    """Earliest recorded activity — virtual time before it (spent in
    pre-``HMPI_Init`` setup) is excluded from charts and utilization."""
    return min((e.t0 for e in tracer.events), default=0.0)


def render_gantt(tracer: "Tracer", width: int = 72,
                 t_end: float | None = None) -> str:
    """Render the trace as one fixed-width text row per rank."""
    if len(tracer) == 0:
        return "(empty trace)"
    t0 = _t_start(tracer)
    t_end = tracer.makespan() if t_end is None else t_end
    if t_end - t0 <= 0:
        return "(trace has no duration)"
    nranks = tracer.nranks()
    scale = width / (t_end - t0)

    lines = []
    for rank in range(nranks):
        cells = [" "] * width
        for e in tracer.of_rank(rank):
            glyph = _GLYPHS.get(e.kind)
            if glyph is None:
                continue
            c0 = min(width - 1, int((e.t0 - t0) * scale))
            c1 = min(width - 1, int((e.t1 - t0) * scale))
            if c1 < c0:
                c0, c1 = c1, c0
            for c in range(c0, c1 + 1):
                if _PRIORITY[glyph] > _PRIORITY[cells[c]]:
                    cells[c] = glyph
        finish = max((e.t1 for e in tracer.of_rank(rank)), default=0.0)
        lines.append(f"rank {rank:2d} |{''.join(cells)}| {finish:.3f}s")
    return "\n".join(lines + [_LEGEND])


def utilization(tracer: "Tracer", rank: int, t_end: float | None = None) -> float:
    """Fraction of the run this rank spent in modelled computation.

    The window starts at the first recorded event, not at virtual time
    zero — setup before ``HMPI_Init`` (launcher work, speed probes that
    predate the trace) would otherwise dilute every rank's utilization.
    """
    t0 = _t_start(tracer)
    t_end = tracer.makespan() if t_end is None else t_end
    if t_end - t0 <= 0:
        return 0.0
    return tracer.total_compute_seconds(rank) / (t_end - t0)
