"""Hierarchical topology tree: structure, validation, pair-cost queries."""

import pytest

from repro.cluster import (
    GIGABIT_ETHERNET,
    TCP_100MBIT,
    WAN_10MBIT,
    Link,
    Machine,
    Cluster,
    Topology,
    TopologyNode,
    clusters_of_clusters,
    two_site_network,
)
from repro.cluster.presets import TOPOLOGY_PRESETS
from repro.util.errors import ClusterError


def small_topology():
    """Two 2-machine switches under one WAN root (4 machines)."""
    switches = [
        TopologyNode(
            name=f"sw{s}", kind="switch", protocols=(GIGABIT_ETHERNET,),
            children=(TopologyNode.leaf(f"m{2 * s}"),
                      TopologyNode.leaf(f"m{2 * s + 1}")),
        )
        for s in range(2)
    ]
    return Topology(TopologyNode(
        name="wan", kind="site", protocols=(WAN_10MBIT,),
        children=tuple(switches),
    ))


def small_cluster(topology=None):
    machines = [Machine(name=f"m{i}", speed=100.0) for i in range(4)]
    return Cluster(machines, default_protocols=(WAN_10MBIT,),
                   topology=topology)


class TestStructure:
    def test_leaf_names_and_depth(self):
        topo = small_topology()
        assert topo.leaf_names() == ["m0", "m1", "m2", "m3"]
        assert topo.depth == 2

    def test_walk_paths(self):
        topo = small_topology()
        paths = {n.name: p for p, n in topo.root.walk()}
        assert paths["wan"] == ()
        assert paths["sw1"] == (1,)
        assert paths["m3"] == (1, 1)

    def test_render_mentions_levels_and_machines(self):
        text = small_topology().render()
        assert "wan" in text and "[switch]" in text and "m3" in text
        assert "wan-10mbit" in text


class TestValidation:
    def test_valid_tree_is_ok(self):
        report = small_topology().validate()
        assert report.ok
        assert report.render() == "ok"

    def test_interior_without_protocols_is_error(self):
        topo = Topology(TopologyNode(
            name="root", children=(TopologyNode.leaf("a"),
                                   TopologyNode.leaf("b")),
        ))
        report = topo.validate()
        assert not report.ok
        assert any("no protocols" in e for e in report.errors)

    def test_duplicate_machine_is_error(self):
        topo = Topology(TopologyNode(
            name="root", protocols=(TCP_100MBIT,),
            children=(TopologyNode.leaf("a"), TopologyNode.leaf("a")),
        ))
        report = topo.validate()
        assert any("appears 2 times" in e for e in report.errors)

    def test_leaf_with_children_is_error(self):
        bad_leaf = TopologyNode(name="a", machine="a",
                                children=(TopologyNode.leaf("b"),))
        topo = Topology(TopologyNode(
            name="root", protocols=(TCP_100MBIT,), children=(bad_leaf,)))
        assert any("has children" in e for e in topo.validate().errors)

    def test_single_child_level_warns(self):
        topo = Topology(TopologyNode(
            name="root", protocols=(TCP_100MBIT,),
            children=(
                TopologyNode(name="only", protocols=(GIGABIT_ETHERNET,),
                             children=(TopologyNode.leaf("a"),
                                       TopologyNode.leaf("b"))),
            ),
        ))
        report = topo.validate()
        assert report.ok
        assert any("single child" in w for w in report.warnings)

    def test_inverted_hierarchy_warns(self):
        # Child level slower than its ancestor: works, but defeats the point.
        topo = Topology(TopologyNode(
            name="fast-top", protocols=(GIGABIT_ETHERNET,),
            children=(
                TopologyNode(name="slow-inner", protocols=(WAN_10MBIT,),
                             children=(TopologyNode.leaf("a"),
                                       TopologyNode.leaf("b"))),
                TopologyNode.leaf("c"),
            ),
        ))
        report = topo.validate()
        assert report.ok
        assert any("inverted" in w for w in report.warnings)

    def test_cluster_mismatch_is_error(self):
        topo = small_topology()
        machines = [Machine(name=f"x{i}", speed=1.0) for i in range(2)]
        cluster = Cluster(machines, default_protocols=(TCP_100MBIT,))
        report = topo.validate(cluster)
        assert any("does not appear in the topology" in e for e in report.errors)
        assert any("is not in the cluster" in e for e in report.errors)

    def test_bind_raises_on_errors(self):
        topo = small_topology()
        machines = [Machine(name="zz", speed=1.0)]
        with pytest.raises(ClusterError, match="invalid topology"):
            Cluster(machines, default_protocols=(TCP_100MBIT,), topology=topo)


class TestPairQueries:
    def test_distance(self):
        cluster = small_cluster(small_topology())
        topo = cluster.topology
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 1) == 2   # via the shared switch
        assert topo.distance(0, 2) == 4   # via the WAN root
        assert cluster.machine_distance(0, 2) == 4

    def test_flat_cluster_distance(self):
        cluster = small_cluster()
        assert cluster.machine_distance(0, 0) == 0
        assert cluster.machine_distance(0, 3) == 1

    def test_dca_protocols(self):
        topo = small_cluster(small_topology()).topology
        assert topo.pair_protocols(0, 1)[0].name == GIGABIT_ETHERNET.name
        assert topo.pair_protocols(1, 2)[0].name == WAN_10MBIT.name
        with pytest.raises(ClusterError, match="loopback"):
            topo.pair_protocols(2, 2)

    def test_unbound_queries_raise(self):
        topo = small_topology()
        with pytest.raises(ClusterError, match="not bound"):
            topo.distance(0, 1)

    def test_split_levels(self):
        topo = small_cluster(small_topology()).topology
        keys, level = topo.split([0, 1, 2, 3])
        assert level.name == "wan"
        assert keys == [0, 0, 1, 1]
        keys, level = topo.split([0, 1])
        assert level.name == "sw0"
        assert keys == [0, 1]
        assert topo.split([2]) is None
        assert topo.split([]) is None


class TestClusterIntegration:
    def test_topology_derives_links(self):
        cluster = small_cluster(small_topology())
        intra = cluster.transfer_time(0, 1, 1 << 20)
        inter = cluster.transfer_time(0, 2, 1 << 20)
        assert intra == pytest.approx(
            GIGABIT_ETHERNET.transfer_time(1 << 20))
        assert inter == pytest.approx(WAN_10MBIT.transfer_time(1 << 20))
        assert inter > 50 * intra

    def test_explicit_link_beats_topology(self):
        cluster = small_cluster(small_topology())
        cluster.set_link(0, 1, Link.single(TCP_100MBIT), symmetric=True)
        assert cluster.link(0, 1).protocols[0].name == "tcp-100mbit"
        # The other switch pair still derives from the topology.
        assert cluster.link(2, 3).protocols[0].name == GIGABIT_ETHERNET.name

    def test_set_topology_none_restores_flat(self):
        cluster = small_cluster(small_topology())
        assert cluster.transfer_time(0, 1, 1000) != pytest.approx(
            WAN_10MBIT.transfer_time(1000))
        cluster.set_topology(None)
        assert cluster.topology is None
        # Back to the default-protocol mesh.
        assert cluster.transfer_time(0, 1, 1000) == pytest.approx(
            WAN_10MBIT.transfer_time(1000))


class TestPresets:
    @pytest.mark.parametrize("name", sorted(TOPOLOGY_PRESETS))
    def test_presets_validate_clean(self, name):
        cluster = TOPOLOGY_PRESETS[name]()
        report = cluster.topology.validate(cluster)
        assert report.ok
        assert not report.warnings, report.render()

    def test_two_site_shape(self):
        cluster = two_site_network(machines_per_site=4)
        assert cluster.size == 8
        assert cluster.topology.depth == 2
        assert cluster.machine_distance(0, 1) == 2
        assert cluster.machine_distance(0, 4) == 4

    def test_clusters_of_clusters_shape(self):
        cluster = clusters_of_clusters(sites=2, subnets_per_site=2,
                                       machines_per_subnet=2)
        assert cluster.size == 8
        topo = cluster.topology
        assert topo.depth == 3
        assert topo.distance(0, 1) == 2   # same switch
        assert topo.distance(0, 2) == 4   # same site, different switch
        assert topo.distance(0, 4) == 6   # different sites

    def test_two_site_requires_two_machines(self):
        with pytest.raises(ValueError):
            two_site_network(machines_per_site=1)

    def test_clusters_of_clusters_speed_length_checked(self):
        with pytest.raises(ValueError):
            clusters_of_clusters(speeds=[1.0, 2.0])
