"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import (
    Cluster,
    Machine,
    homogeneous_network,
    paper_network,
    uniform_network,
)


@pytest.fixture
def paper_cluster() -> Cluster:
    """The paper's 9-workstation testbed."""
    return paper_network()


@pytest.fixture
def small_cluster() -> Cluster:
    """Four machines with a 4:1 speed spread — fast unit-test substrate."""
    return uniform_network([100.0, 50.0, 25.0, 200.0])


@pytest.fixture
def homo4() -> Cluster:
    """Four identical machines — the control case."""
    return homogeneous_network(4, speed=100.0)


@pytest.fixture
def pair_cluster() -> Cluster:
    """Two machines for minimal point-to-point scenarios."""
    return uniform_network([100.0, 50.0])
