"""Process-selection algorithms validated against the exhaustive oracle."""

import numpy as np
import pytest

from repro.cluster import paper_network, uniform_network
from repro.core.estimator import estimate_time
from repro.core.mapper import (
    DefaultMapper,
    ExhaustiveMapper,
    GreedyMapper,
    Mapping,
    RefineMapper,
)
from repro.core.netmodel import NetworkModel
from repro.perfmodel.builder import MatrixModel
from repro.util.errors import MappingError


def netmodel(speeds=(100.0, 50.0, 25.0, 200.0)):
    cluster = uniform_network(list(speeds))
    return NetworkModel(cluster, list(range(cluster.size)))


def compute_model(volumes, comm_bytes=0.0):
    n = len(volumes)
    links = np.full((n, n), float(comm_bytes))
    np.fill_diagonal(links, 0.0)
    return MatrixModel(list(volumes), links)


class TestMappingDataclass:
    def test_length_consistency(self):
        with pytest.raises(MappingError):
            Mapping((0, 1), (0,), 1.0)


class TestInputValidation:
    def test_too_few_candidates(self):
        nm = netmodel()
        model = compute_model([1.0, 1.0, 1.0])
        with pytest.raises(MappingError, match="needs 3"):
            GreedyMapper().select(model, nm, [0, 1])

    def test_duplicate_candidates(self):
        nm = netmodel()
        model = compute_model([1.0])
        with pytest.raises(MappingError):
            GreedyMapper().select(model, nm, [0, 0])

    def test_fixed_out_of_range(self):
        nm = netmodel()
        model = compute_model([1.0])
        with pytest.raises(MappingError):
            GreedyMapper().select(model, nm, [0, 1], fixed={5: 0})

    def test_fixed_not_candidate(self):
        nm = netmodel()
        model = compute_model([1.0])
        with pytest.raises(MappingError):
            GreedyMapper().select(model, nm, [0], fixed={0: 3})

    def test_two_fixed_same_process(self):
        nm = netmodel()
        model = compute_model([1.0, 1.0])
        with pytest.raises(MappingError):
            GreedyMapper().select(model, nm, [0, 1], fixed={0: 1, 1: 1})


class TestExhaustiveMapper:
    def test_biggest_volume_on_fastest_machine(self):
        nm = netmodel()
        model = compute_model([100.0, 10.0])
        m = ExhaustiveMapper().select(model, nm, [0, 1, 2, 3])
        assert m.processes[0] == 3  # speed 200
        assert m.time == pytest.approx(
            estimate_time(model, nm, m.machines)
        )

    def test_respects_fixed(self):
        nm = netmodel()
        model = compute_model([100.0, 10.0])
        m = ExhaustiveMapper().select(model, nm, [0, 1, 2, 3], fixed={0: 2})
        assert m.processes[0] == 2
        # The pinned 100-unit volume on the speed-25 machine dominates
        # (4 s); the second processor may go anywhere else.
        assert m.processes[1] != 2
        assert m.time == pytest.approx(100.0 / 25.0, rel=1e-3)

    def test_is_actually_optimal(self):
        """Brute-force cross-check on a tiny instance."""
        import itertools

        nm = netmodel((30.0, 60.0, 90.0))
        rng = np.random.default_rng(1)
        model = MatrixModel(
            rng.uniform(10, 50, size=3),
            rng.uniform(0, 1e5, size=(3, 3)) * (1 - np.eye(3)),
        )
        best = min(
            estimate_time(model, nm, list(perm))
            for perm in itertools.permutations([0, 1, 2])
        )
        found = ExhaustiveMapper(reduce_symmetry=False).select(model, nm, [0, 1, 2])
        assert found.time == pytest.approx(best)

    def test_symmetry_reduction_same_answer(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        model = compute_model([50.0, 30.0, 10.0])
        full = ExhaustiveMapper(reduce_symmetry=False).select(model, nm, list(range(9)))
        reduced = ExhaustiveMapper(reduce_symmetry=True).select(model, nm, list(range(9)))
        assert reduced.time == pytest.approx(full.time)

    def test_budget_guard(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        model = compute_model([1.0] * 9)
        with pytest.raises(MappingError, match="exceeded"):
            ExhaustiveMapper(reduce_symmetry=False, max_evaluations=10).select(
                model, nm, list(range(9))
            )


class TestGreedyMapper:
    def test_lpt_balancing(self):
        nm = netmodel((100.0, 100.0))
        model = compute_model([60.0, 30.0, 30.0])
        # 3 procs, 2 machines impossible -> need 3 candidates
        nm3 = netmodel((100.0, 100.0, 100.0))
        m = GreedyMapper().select(model, nm3, [0, 1, 2])
        # all distinct machines; makespan = 0.6
        assert sorted(m.processes) == [0, 1, 2]

    def test_matches_oracle_compute_bound(self):
        nm = netmodel()
        model = compute_model([80.0, 40.0, 20.0, 10.0])
        greedy = GreedyMapper().select(model, nm, [0, 1, 2, 3])
        oracle = ExhaustiveMapper(reduce_symmetry=False).select(model, nm, [0, 1, 2, 3])
        assert greedy.time == pytest.approx(oracle.time)

    def test_respects_fixed(self):
        nm = netmodel()
        model = compute_model([80.0, 40.0])
        m = GreedyMapper().select(model, nm, [0, 1, 2, 3], fixed={1: 0})
        assert m.processes[1] == 0


class TestRefineAndDefault:
    def test_refine_never_worse_than_seed(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        rng = np.random.default_rng(7)
        n = 6
        links = rng.uniform(0, 5e6, size=(n, n)) * (1 - np.eye(n))
        model = MatrixModel(rng.uniform(20, 200, size=n), links)
        seed = GreedyMapper().select(model, nm, list(range(9)))
        refined = RefineMapper(seed=GreedyMapper()).select(model, nm, list(range(9)))
        assert refined.time <= seed.time + 1e-12

    def test_default_close_to_oracle_on_paper_network(self):
        nm = NetworkModel(paper_network(), list(range(9)))
        rng = np.random.default_rng(3)
        n = 5
        links = rng.uniform(0, 1e6, size=(n, n)) * (1 - np.eye(n))
        model = MatrixModel(rng.uniform(20, 200, size=n), links)
        default = DefaultMapper().select(model, nm, list(range(9)))
        oracle = ExhaustiveMapper().select(model, nm, list(range(9)))
        assert default.time <= oracle.time * 1.10  # within 10%

    def test_refine_respects_pins(self):
        nm = netmodel()
        model = compute_model([100.0, 1.0])
        m = DefaultMapper().select(model, nm, [0, 1, 2, 3], fixed={0: 1})
        assert m.processes[0] == 1


class TestColocation:
    def test_more_processors_than_machines(self):
        """With 4 abstract processors and candidates on 2 machines, the
        mapper must produce a valid sharing assignment."""
        cluster = uniform_network([100.0, 50.0])
        nm = NetworkModel(cluster, [0, 0, 1, 1])  # 2 procs per machine
        model = compute_model([30.0, 30.0, 30.0, 30.0])
        m = GreedyMapper().select(model, nm, [0, 1, 2, 3])
        assert len(set(m.processes)) == 4
        # expected optimum: split volume 2:1 — machine 0 hosts more work.
        time = estimate_time(model, nm, m.machines)
        assert m.time == pytest.approx(time)


class TestTopologyLocality:
    """With a topology attached, the greedy mapper prefers co-located
    machines when the compute-balance tie-break allows it."""

    def test_four_process_group_stays_in_one_site(self):
        from repro.cluster import two_site_network

        cluster = two_site_network()  # 8 equal-speed machines, 2 sites
        nm = NetworkModel(cluster, list(range(cluster.size)))
        model = compute_model([1.0, 1.0, 1.0, 1.0], comm_bytes=1 << 16)
        m = GreedyMapper().select(model, nm, list(range(cluster.size)))
        distances = [
            nm.machine_distance(a, b)
            for a in m.machines for b in m.machines if a != b
        ]
        # Intra-site pairs are 2 apart; crossing the WAN costs 4.
        assert max(distances) <= 2

    def test_locality_does_not_override_speed(self):
        from repro.cluster import clusters_of_clusters

        # Site 1 (machines 4-7) is 4x faster: compute dominates, so the
        # mapper must still pick the fast site even though rank-0 numbering
        # starts in the slow one.
        cluster = clusters_of_clusters(speeds=[25.0] * 4 + [100.0] * 4)
        nm = NetworkModel(cluster, list(range(cluster.size)))
        model = compute_model([100.0, 100.0, 100.0, 100.0])
        m = GreedyMapper().select(model, nm, list(range(cluster.size)))
        assert set(m.machines) <= {4, 5, 6, 7}

    def test_flat_cluster_behavior_unchanged(self):
        """Without a topology the tie-break key is inert: same mapping as
        the historical first-strictly-better scan."""
        nm = netmodel((100.0, 100.0, 100.0, 100.0))
        model = compute_model([5.0, 4.0, 3.0, 2.0])
        m = GreedyMapper().select(model, nm, [0, 1, 2, 3])
        assert sorted(m.machines) == [0, 1, 2, 3]
