"""Communicator error paths and miscellaneous accessors."""

import pytest

from repro.cluster import uniform_network
from repro.mpi import run_mpi
from repro.util.errors import MPICommError


class TestRankValidation:
    def test_send_to_out_of_range_rank(self, pair_cluster):
        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.send(1, 5)
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)

    def test_recv_from_out_of_range_rank(self, pair_cluster):
        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.recv(9)
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)

    def test_bcast_root_out_of_range(self, pair_cluster):
        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.bcast(1, root=7)
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)

    def test_reduce_root_out_of_range(self, pair_cluster):
        from repro.mpi import SUM

        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.reduce(1, SUM, root=-1)
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)


class TestWorldProperties:
    def test_is_world(self, pair_cluster):
        def app(env):
            sub = env.comm_world.split(0)
            return (env.comm_world.is_world, sub.is_world)

        res = run_mpi(app, pair_cluster)
        assert res.results[0] == (True, False)

    def test_wtime_monotone(self, pair_cluster):
        def app(env):
            t0 = env.comm_world.wtime()
            env.compute(10.0)
            t1 = env.comm_world.wtime()
            return t1 > t0

        res = run_mpi(app, pair_cluster)
        assert all(res.results)

    def test_repr_contains_rank(self, pair_cluster):
        def app(env):
            return repr(env.comm_world)

        res = run_mpi(app, pair_cluster)
        assert "rank=0/2" in res.results[0]


class TestSubCommunicatorTranslation:
    def test_status_source_is_comm_rank(self):
        cluster = uniform_network([10.0] * 4)

        def app(env):
            from repro.mpi import Status

            # sub-communicator of ranks {2, 3}: comm ranks 0, 1
            sub = env.comm_world.split(0 if env.rank >= 2 else 1, key=env.rank)
            if env.rank == 2:
                sub.send("x", 1, tag=4)
                return None
            if env.rank == 3:
                st = Status()
                sub.recv(0, 4, status=st)
                return st.source  # must be 0 (comm rank), not 2 (world)
            return None

        res = run_mpi(app, cluster)
        assert res.results[3] == 0

    def test_messages_cross_comm_ranks_correctly(self):
        cluster = uniform_network([10.0] * 4)

        def app(env):
            sub = env.comm_world.split(env.rank % 2, key=env.rank)
            # in each sub-comm: comm rank 0 sends its world rank to comm rank 1
            if sub.rank == 0:
                sub.send(env.rank, 1)
                return None
            return sub.recv(0)

        res = run_mpi(app, cluster)
        assert res.results[2] == 0  # world 2 is comm rank 1 of the even comm
        assert res.results[3] == 1
