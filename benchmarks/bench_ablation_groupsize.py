"""Ablation — automatic group sizing (extension, HeteroMPI direction).

The paper fixes the process count and optimises placement; the natural
extension (realised in the authors' later HeteroMPI work) also chooses
*how many* processes to use.  The interesting regime is an Amdahl-style
workload: perfectly divisible work plus a serial tail at the root
(combining one partial result per member).  With no serial part, more
machines always help; as the per-member combine cost grows, the tuned
group shrinks.  This bench sweeps the combine cost and verifies the tuned
size against always-using-all-9, and every prediction against a faithful
execution.
"""

import pytest

from repro.cluster import paper_network
from repro.core import run_hmpi
from repro.core.autotune import auto_create, tune_group_size
from repro.perfmodel import CallableModel
from repro.util.tables import Table

TOTAL_WORK = 900.0
PARTIAL_BYTES = 64 * 1024
COMBINE_COSTS = [0.0, 3.0, 10.0, 30.0]  # benchmark units per member at root


def family_for(combine_cost):
    def family(p):
        def node_volume(i):
            base = TOTAL_WORK / p
            return base + (combine_cost * (p - 1) if i == 0 else 0.0)

        return CallableModel(
            p,
            node_volume=node_volume,
            link_volume=lambda s, d: float(PARTIAL_BYTES) if d == 0 else 0.0,
            name=f"amdahl-{p}",
        )

    return family


def _run(combine_cost):
    def app(hmpi):
        family = family_for(combine_cost)
        if hmpi.is_host():
            sweep = tune_group_size(hmpi, family, range(1, 10))
            info = (sweep.best_p, sweep.best_time, sweep.predictions.get(9))
        else:
            info = None
        best_p, best_time, all9 = hmpi.comm_world.bcast(info, root=0)

        gid, chosen = auto_create(hmpi, family, range(1, 10))
        measured = None
        if gid.is_member:
            comm = gid.comm
            conc = gid.my_concurrency
            comm.barrier()
            t0 = comm.wtime()
            # the modelled pattern: partials to the root, root combines
            if comm.rank != 0:
                comm.send(b"", 0, tag=0, nbytes=PARTIAL_BYTES)
            hmpi.compute(TOTAL_WORK / chosen, conc)
            if comm.rank == 0:
                for s in range(1, comm.size):
                    comm.recv(s, tag=0)
                hmpi.compute(combine_cost * (chosen - 1), conc)
            comm.barrier()
            measured = comm.wtime() - t0
            hmpi.group_free(gid)
        return best_p, best_time, all9, measured

    res = run_hmpi(app, paper_network())
    best_p, best_time, all9, _ = res.results[0]
    measured = max(m for *_, m in res.results if m is not None)
    return best_p, best_time, all9, measured


def _sweep():
    return [(c, *_run(c)) for c in COMBINE_COSTS]


def test_ablation_groupsize(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    t = Table("combine cost/member", "tuned p", "predicted (s)",
              "measured (s)", "always-9 predicted (s)",
              title="Ablation — automatic group sizing "
                    "(divisible work + serial combine at the root)")
    for c, p, pred, all9, measured in rows:
        t.add(c, p, pred, measured, all9)
    report.emit(t.render())

    chosen = [p for _, p, _, _, _ in rows]
    # A growing serial fraction shrinks the optimal group (monotone trend).
    assert all(a >= b for a, b in zip(chosen, chosen[1:]))
    assert chosen[0] > chosen[-1]
    for c, p, pred, all9, measured in rows:
        # The tuned size never predicts worse than always-using-all-9...
        assert pred <= all9 + 1e-9
        # ...and the prediction is honest.
        assert measured == pytest.approx(pred, rel=0.05)