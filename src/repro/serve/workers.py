"""Execution backends: sharded worker processes (or inline threads).

The accept loop never computes — every batch is handed to a *lane* and
the result comes back via a thread-safe callback into the event loop.
Two backends share that contract:

``workers >= 1`` — ``multiprocessing`` (spawn) worker processes, one
    inbox queue each and a shared outbox drained by a collector thread.
    Spawn (not fork) because the server process runs threads and an
    asyncio loop; forking that is unsafe.
``workers == 0`` — inline mode: the same sharded-lane structure built
    from daemon threads in-process.  Used by tests and single-machine
    deployments; no pickling, no process startup.

Worlds are *sharded*: a batch is routed to a lane by the stable hash of
its world digest, so all traffic for one cluster lands on the same lane
and shares that lane's caches (network model, selection cache, compiled
models), while other worlds proceed in parallel — a slow world cannot
block an unrelated one.  Each lane owns a private
:class:`~repro.serve.exec.Executor`; nothing is shared across lanes, so
there is no cross-process cache-coherence problem to solve.
"""

from __future__ import annotations

import multiprocessing as mp
import queue
import threading
import time
from typing import Any, Callable

from .exec import Executor
from .protocol import JobRequest, ServeError

__all__ = ["WorkerPool", "execute_payload", "request_from_dict"]


def request_from_dict(d: dict[str, Any]) -> JobRequest:
    """Rebuild a (pre-validated) request shipped to a worker."""
    return JobRequest(**d)


def execute_payload(executor: Executor, payload: dict[str, Any]) -> list[dict]:
    """Run one task payload; one outcome dict per job, in order.

    A ``batch`` payload executes each member against the lane's caches —
    the first member pays the evaluation, coalesced members hit the
    world's selection cache.  A ``trace`` payload exports the Chrome
    trace of one selection job.
    """
    outcomes: list[dict] = []
    kind = payload.get("kind", "batch")
    for d in payload["requests"]:
        req = request_from_dict(d)
        try:
            if kind == "trace":
                outcomes.append({"ok": executor.trace(req)})
            else:
                outcomes.append({"ok": executor.execute(req)})
        except ServeError as exc:
            outcomes.append({"error": str(exc), "status": exc.status})
        except Exception as exc:  # worker must never die on one bad job
            outcomes.append(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500})
    return outcomes


def _worker_main(inbox: Any, outbox: Any) -> None:
    """Worker-process loop: drain inbox until the ``None`` sentinel."""
    executor = Executor()
    while True:
        task = inbox.get()
        if task is None:
            break
        task_id, payload = task
        try:
            outcomes = execute_payload(executor, payload)
        except Exception as exc:  # pragma: no cover - belt and braces
            outcomes = [{"error": f"{type(exc).__name__}: {exc}",
                         "status": 500}] * len(payload.get("requests", ()))
        outbox.put((task_id, outcomes))


class _InlineLane:
    """One in-process lane: a daemon thread over a private Executor."""

    def __init__(self, index: int, outbox: "queue.Queue") -> None:
        self.inbox: "queue.Queue" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, args=(outbox,),
            name=f"repro-serve-lane-{index}", daemon=True)
        self._thread.start()

    def _run(self, outbox: "queue.Queue") -> None:
        executor = Executor()
        while True:
            task = self.inbox.get()
            if task is None:
                break
            task_id, payload = task
            outbox.put((task_id, execute_payload(executor, payload)))

    def stop(self) -> None:
        self.inbox.put(None)


class WorkerPool:
    """Sharded lanes with a single result callback.

    ``on_result(task_id, outcomes)`` is invoked from the collector
    thread — callers running an event loop should wrap it with
    ``loop.call_soon_threadsafe``.
    """

    def __init__(self, workers: int = 0, *,
                 on_result: Callable[[str, list[dict]], None]):
        self.workers = workers
        self.on_result = on_result
        self._procs: list[Any] = []
        self._inboxes: list[Any] = []
        self._lanes: list[_InlineLane] = []
        self._stopped = False
        self._pending: dict[str, tuple[int, int]] = {}  # task -> (lane, njobs)
        self._lock = threading.Lock()
        self._watchdog: threading.Thread | None = None
        if workers >= 1:
            self._ctx = mp.get_context("spawn")
            self._outbox: Any = self._ctx.Queue()
            for i in range(workers):
                self._spawn_lane(i)
            self.nlanes = workers
            self._watchdog = threading.Thread(
                target=self._watch, name="repro-serve-watchdog", daemon=True)
            self._watchdog.start()
        else:
            self._outbox = queue.Queue()
            nlanes = 4
            self._lanes = [_InlineLane(i, self._outbox)
                           for i in range(nlanes)]
            self._inboxes = [lane.inbox for lane in self._lanes]
            self.nlanes = nlanes
        self._collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True)
        self._collector.start()

    def _spawn_lane(self, i: int) -> None:
        inbox = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main, args=(inbox, self._outbox),
            name=f"repro-serve-worker-{i}", daemon=True)
        proc.start()
        if i < len(self._inboxes):
            self._inboxes[i] = inbox
            self._procs[i] = proc
        else:
            self._inboxes.append(inbox)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def lane_of(self, shard_key: str) -> int:
        """Stable shard routing: one world, one lane, shared caches."""
        return int(shard_key[:16] or "0", 16) % self.nlanes

    def submit(self, task_id: str, shard_key: str,
               payload: dict[str, Any]) -> None:
        lane = self.lane_of(shard_key)
        with self._lock:
            self._pending[task_id] = (lane, len(payload.get("requests", ())))
        self._inboxes[lane].put((task_id, payload))

    def _collect(self) -> None:
        while True:
            item = self._outbox.get()
            if item is None:
                break
            task_id, outcomes = item
            with self._lock:
                self._pending.pop(task_id, None)
            self.on_result(task_id, outcomes)

    def _watch(self) -> None:
        """Fail in-flight tasks of a dead worker process and respawn it.

        A worker killed mid-job (OOM, segfault in a native lib) must not
        strand its jobs until their waits expire — they error out
        immediately and the lane comes back for new traffic.
        """
        while not self._stopped:
            time.sleep(0.25)
            for i, proc in enumerate(self._procs):
                if self._stopped or proc.is_alive():
                    continue
                with self._lock:
                    dead = [(tid, n) for tid, (lane, n) in
                            self._pending.items() if lane == i]
                    for tid, _ in dead:
                        del self._pending[tid]
                self._spawn_lane(i)
                for tid, n in dead:
                    self.on_result(tid, [{
                        "error": "worker process died while executing",
                        "status": 500,
                    }] * max(n, 1))

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
        self._outbox.put(None)
        self._collector.join(timeout=5.0)
