"""Declarative scenario-campaign harness.

Describe an experiment sweep as a JSON document — an application driver,
fixed parameters, and axes to cross — and run every cell through the
library with per-run derived seeds, structured JSONL results, and
regression checking against committed baselines::

    from repro.campaign import load_config, run_campaign

    config = load_config("examples/campaigns/mapper_ablation.json")
    writer = run_campaign(config, out_dir="out/")
    print(writer.summary(config.name, config.to_dict()))

See ``docs/CAMPAIGNS.md`` for the config schema, the driver catalogue
(including the dynamic-world ``iterative`` driver with machine churn,
time-varying load, and the re-selection policy axis), and the baseline
format.  The CLI front end is ``repro campaign run/check/list``.
"""

from .baseline import (
    DEFAULT_TOLERANCES,
    baseline_from_rows,
    check_against_baseline,
    load_baseline,
)
from .config import (
    EXECUTION_AXES,
    CampaignConfig,
    RunSpec,
    derive_seed,
    load_config,
)
from .drivers import DRIVERS, RESELECTION_POLICIES, Driver, resolve_driver
from .results import (
    RESULT_FIELDS,
    SCHEMA_VERSION,
    SUMMARY_FIELDS,
    ResultsWriter,
    canonical_json,
    read_rows,
)
from .runner import run_campaign, run_one
from .scenarios import (
    CHURN_OPS,
    CLUSTER_PRESETS,
    LOAD_KINDS,
    ChurnEvent,
    apply_scenario,
    build_cluster,
    build_load_model,
    normalize_churn,
)

__all__ = [
    "CampaignConfig",
    "RunSpec",
    "EXECUTION_AXES",
    "derive_seed",
    "load_config",
    "run_campaign",
    "run_one",
    "ResultsWriter",
    "read_rows",
    "canonical_json",
    "SCHEMA_VERSION",
    "RESULT_FIELDS",
    "SUMMARY_FIELDS",
    "DRIVERS",
    "Driver",
    "resolve_driver",
    "RESELECTION_POLICIES",
    "DEFAULT_TOLERANCES",
    "check_against_baseline",
    "baseline_from_rows",
    "load_baseline",
    "CLUSTER_PRESETS",
    "LOAD_KINDS",
    "CHURN_OPS",
    "ChurnEvent",
    "build_cluster",
    "build_load_model",
    "apply_scenario",
    "normalize_churn",
]
