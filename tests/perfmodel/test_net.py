"""The communication-net lowering and the PM08x structural checks.

Each ``net_*`` fixture seeds exactly one structural defect; the tests
assert the exact PM08x code, severity, and line.  The paper's models
(EM3D, ParallelAxB, Jacobi) and the example models (ring, pipeline) must
unroll cleanly — no PM08x errors or warnings at the probe binding.
"""

from pathlib import Path

import pytest

from repro.apps.em3d.model import EM3D_MODEL_SOURCE
from repro.apps.jacobi.model import JACOBI_MODEL_SOURCE
from repro.apps.matmul.model import MM_MODEL_SOURCE, make_get_processor
from repro.perfmodel import check_source, compile_model, lower_model
from repro.perfmodel.diagnostics import Severity
from repro.perfmodel.netcheck import check_model_net, probe_bindings
from repro.util.errors import PMDLAnalysisError

FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).parent.parent.parent / "examples" / "models"

ERROR = Severity.ERROR
WARNING = Severity.WARNING

#: fixture stem -> (code, severity, line) that MUST appear in the report.
EXPECTED = {
    "net_deadlock": ("PM080", ERROR, 12),
    "net_orphan": ("PM081", WARNING, 11),
    "net_multiplicity": ("PM082", WARNING, 9),
    "net_unreachable": ("PM083", WARNING, 15),
}


def _check_fixture(stem: str):
    source = (FIXTURES / f"{stem}.pmdl").read_text()
    return check_source(source, target=stem, net=True)


class TestSeededNetDefects:
    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_reports_expected_diagnostic(self, stem):
        code, severity, line = EXPECTED[stem]
        report = _check_fixture(stem)
        found = [(d.code, d.severity, d.line) for d in report.diagnostics]
        assert (code, severity, line) in found, (
            f"{stem}: expected {code}/{severity}/line {line}, got {found}")

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_exactly_one_net_diagnostic(self, stem):
        report = _check_fixture(stem)
        net_codes = [d.code for d in report.diagnostics
                     if d.code.startswith("PM08")]
        assert net_codes == [EXPECTED[stem][0]]

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_strict_exit_gates_on_severity(self, stem):
        _, severity, _ = EXPECTED[stem]
        assert _check_fixture(stem).exit_code(strict=False) == (
            1 if severity >= ERROR else 0)
        assert _check_fixture(stem).exit_code(strict=True) == 1

    def test_without_net_flag_fixtures_stay_silent(self):
        # The defects are net-structural: the interval analyzer alone
        # must not (and cannot) report them.
        for stem in EXPECTED:
            source = (FIXTURES / f"{stem}.pmdl").read_text()
            report = check_source(source, target=stem)
            assert not any(d.code.startswith("PM08")
                           for d in report.diagnostics)

    def test_deadlock_gates_compilation(self):
        source = (FIXTURES / "net_deadlock.pmdl").read_text()
        from repro.perfmodel import compile_source
        with pytest.raises(PMDLAnalysisError):
            compile_source(source, net_check=True)

    def test_all_net_fixtures_have_expectations(self):
        stems = {p.stem for p in FIXTURES.glob("net_*.pmdl")}
        assert stems == set(EXPECTED)


class TestCleanModels:
    @pytest.mark.parametrize("name,source,externals", [
        ("em3d", EM3D_MODEL_SOURCE, None),
        ("matmul", MM_MODEL_SOURCE, {"GetProcessor": make_get_processor()}),
        ("jacobi", JACOBI_MODEL_SOURCE, None),
        ("ring", (EXAMPLES / "ring.pmdl").read_text(), None),
        ("pipeline", (EXAMPLES / "pipeline.pmdl").read_text(), None),
    ])
    def test_unrolls_without_net_findings(self, name, source, externals):
        report = check_source(source, target=name, net=True,
                              externals=externals)
        net_diags = [d for d in report.diagnostics
                     if d.code.startswith("PM08")]
        assert net_diags == [], f"{name}: {net_diags}"
        assert report.ok


class TestLowering:
    def _ring_net(self, p=4):
        source = (EXAMPLES / "ring.pmdl").read_text()
        pm = compile_model(source)
        bound = pm.bind(**probe_bindings(pm, {"p": p}))
        return lower_model(bound), bound

    def test_ring_structure(self):
        net, bound = self._ring_net(4)
        transfers = [e for e in net.kept if e.is_transfer]
        computes = [e for e in net.kept if not e.is_transfer]
        assert len(transfers) == 4 and len(computes) == 4
        # par fork/join transitions plus one per kept action
        assert net.ntransitions == len(net.kept) + 2 * len(net.pars)
        assert net.nplaces > 0

    def test_receives_all_matched(self):
        net, _ = self._ring_net(4)
        matches = net.match_receives()
        assert all(v is not None for v in matches.values())

    def test_concurrency_is_par_scoped(self):
        net, _ = self._ring_net(4)
        branches = {}
        for e in net.kept:
            branches.setdefault(e.a, []).append(e)
        # Events on different par branches are concurrent; events on the
        # same branch are ordered by emission.
        a0, a1 = branches[0][0], branches[1][0]
        assert net.concurrent(a0, a1)
        same = branches[0]
        if len(same) > 1:
            assert not net.concurrent(same[0], same[1])

    def test_to_dot_shape(self):
        net, _ = self._ring_net(3)
        dot = net.to_dot(title="ring")
        assert dot.startswith('digraph "ring"')
        assert dot.rstrip().endswith("}")
        assert "shape=box" in dot and "->" in dot

    def test_probe_overrides_flow_into_dependent_dims(self):
        source = (EXAMPLES / "ring.pmdl").read_text()
        pm = compile_model(source)
        values = probe_bindings(pm, {"p": 6})
        assert values["p"] == 6
        bound = pm.bind(**values)  # dependent array dims must fit p=6
        assert bound.nproc == 6

    def test_check_model_net_skips_unbindable(self):
        pm = compile_model(MM_MODEL_SOURCE,
                           externals={"GetProcessor": make_get_processor()})
        diags = check_model_net(pm)
        assert [d for d in diags if d.code != "PM062"] == []
