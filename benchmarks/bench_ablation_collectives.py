"""Ablation — broadcast algorithm vs network port model.

The substrate supports two port models: the paper's contention-free
switched network (distinct pairs transfer in parallel) and the classic
single-port model (a sender's interface is occupied per transfer).  The
right broadcast algorithm flips between them — flat fan-out is optimal on
the switch, the binomial tree under single-port — which is exactly why
heterogeneity-aware MPI implementations select collective algorithms per
network.  This bench measures all three algorithms under both models.
"""

import pytest

from repro.cluster import Cluster, Machine
from repro.mpi import run_mpi
from repro.util.tables import Table

P = 8
NBYTES = 6_250_000  # 0.5 s per hop over 100 Mbit


def network(single_port):
    return Cluster([Machine(f"n{i:02d}", 100.0) for i in range(P)],
                   single_port=single_port)


def _time_bcast(single_port, algorithm):
    def app(env):
        env.comm_world.bcast(b"" if env.rank == 0 else None, root=0,
                             nbytes=NBYTES, algorithm=algorithm)
        env.comm_world.barrier()
        return env.wtime()

    return max(run_mpi(app, network(single_port)).results)


def _sweep():
    rows = []
    for single_port in (False, True):
        for algorithm in ("flat", "binomial", "chain"):
            rows.append((
                "single-port" if single_port else "switched",
                algorithm,
                _time_bcast(single_port, algorithm),
            ))
    return rows


def test_ablation_collectives(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    t = Table("port model", "algorithm", "bcast time (s)",
              title=f"Ablation — 6.25 MB broadcast to {P} ranks")
    for port, algorithm, seconds in rows:
        t.add(port, algorithm, seconds)
    report.emit(t.render())

    times = {(port, alg): s for port, alg, s in rows}
    # On the switch: flat is one hop and wins; the chain is the worst.
    assert times[("switched", "flat")] < times[("switched", "binomial")]
    assert times[("switched", "binomial")] < times[("switched", "chain")]
    # Under single-port: the tree wins, flat serialises at the root.
    assert times[("single-port", "binomial")] < times[("single-port", "flat")]
    # The crossover itself: the best algorithm differs between models.
    best_switched = min(("flat", "binomial", "chain"),
                        key=lambda a: times[("switched", a)])
    best_single = min(("flat", "binomial", "chain"),
                      key=lambda a: times[("single-port", a)])
    assert best_switched != best_single
    report.emit(f"best on switched network: {best_switched}; "
                f"best under single-port: {best_single}")
