"""Property-based tests pinning the selection engine to the estimator.

:class:`repro.core.estimator.TimelineVisitor` is the semantic oracle for
predicted execution times; the compiled engine in :mod:`repro.core.seleng`
must reproduce it on every candidate mapping — scalar path, batched-scalar
path, and the vectorised path alike — across single-port clusters,
multi-protocol links, co-locating mappings, and degenerate (zero-volume)
models.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import paper_network, uniform_network
from repro.cluster.presets import multiprotocol_network
from repro.core.estimator import TimelineVisitor, _effective_speeds
from repro.core.netmodel import NetworkModel
from repro.core.seleng import (
    BATCH_VECTOR_THRESHOLD,
    TraceEvaluator,
    evaluate_mapping,
    evaluate_mappings,
)
from repro.perfmodel.builder import MatrixModel

TOL = 1e-9


def oracle_time(model, netmodel, machines):
    """Predicted makespan straight from the TimelineVisitor."""
    visitor = TimelineVisitor(
        model.node_volumes(),
        model.link_volumes(),
        _effective_speeds(netmodel, machines),
        netmodel,
        machines,
    )
    model.walk_scheme(visitor)
    return visitor.makespan


def random_model(rng, nproc):
    """A MatrixModel with random volumes and a random interleaved scheme."""
    node = rng.uniform(0.0, 200.0, size=nproc)
    links = rng.uniform(0.0, 5e5, size=(nproc, nproc))
    # Sprinkle zero-byte pairs so dropped transfers are exercised.
    links[rng.uniform(size=(nproc, nproc)) < 0.3] = 0.0
    np.fill_diagonal(links, 0.0)

    actions = []
    for _ in range(rng.integers(1, 30)):
        pct = float(rng.uniform(0.0, 60.0))
        if rng.uniform() < 0.4 or nproc == 1:
            actions.append(("compute", pct, int(rng.integers(nproc)), 0))
        else:
            src = int(rng.integers(nproc))
            dst = int(rng.integers(nproc))
            actions.append(("transfer", pct, src, dst))

    def scheme(visitor):
        for kind, pct, a, b in actions:
            if kind == "compute":
                visitor.compute(pct, a)
            else:
                visitor.transfer(pct, a, b)

    return MatrixModel(node, links, scheme=scheme)


def random_cluster(rng, kind, single_port):
    if kind == 0:
        cluster = paper_network()
    elif kind == 1:
        cluster = multiprotocol_network()
    else:
        speeds = rng.uniform(5.0, 300.0, size=rng.integers(2, 7)).tolist()
        cluster = uniform_network(speeds)
    cluster.single_port = single_port
    return cluster


class TestEngineMatchesOracle:
    @given(
        seed=st.integers(0, 2**31 - 1),
        nproc=st.integers(1, 6),
        kind=st.integers(0, 2),
        single_port=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_scalar_and_small_batch(self, seed, nproc, kind, single_port):
        rng = np.random.default_rng(seed)
        cluster = random_cluster(rng, kind, single_port)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)
        evaluator = TraceEvaluator(model, netmodel)

        mappings = [
            tuple(int(m) for m in rng.integers(0, cluster.size, size=nproc))
            for _ in range(4)
        ]
        expected = [oracle_time(model, netmodel, m) for m in mappings]

        for mapping, want in zip(mappings, expected):
            assert abs(evaluator.evaluate(mapping) - want) <= TOL
        batched = evaluator.evaluate_batch(mappings)
        assert np.all(np.abs(batched - np.asarray(expected)) <= TOL)

    @given(
        seed=st.integers(0, 2**31 - 1),
        nproc=st.integers(1, 5),
        kind=st.integers(0, 2),
        single_port=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_vectorised_batch(self, seed, nproc, kind, single_port):
        """Batches above the vectorisation threshold agree event-for-event."""
        rng = np.random.default_rng(seed)
        cluster = random_cluster(rng, kind, single_port)
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)

        nbatch = BATCH_VECTOR_THRESHOLD + 5
        mappings = [
            tuple(int(m) for m in rng.integers(0, cluster.size, size=nproc))
            for _ in range(nbatch)
        ]
        times = evaluate_mappings(model, netmodel, mappings)
        assert times.shape == (nbatch,)
        for mapping, got in zip(mappings, times):
            assert abs(got - oracle_time(model, netmodel, mapping)) <= TOL

    @given(seed=st.integers(0, 2**31 - 1), nproc=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_colocated_mappings(self, seed, nproc):
        """Speed sharing: everyone on one machine still matches the oracle."""
        rng = np.random.default_rng(seed)
        cluster = paper_network()
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = random_model(rng, nproc)
        machine = int(rng.integers(cluster.size))
        mapping = tuple([machine] * nproc)
        want = oracle_time(model, netmodel, mapping)
        assert abs(evaluate_mapping(model, netmodel, mapping) - want) <= TOL

    @given(seed=st.integers(0, 2**31 - 1), nproc=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_zero_volume_model(self, seed, nproc):
        """All-zero volumes predict zero time on every path."""
        rng = np.random.default_rng(seed)
        cluster = multiprotocol_network()
        netmodel = NetworkModel(cluster, list(range(cluster.size)))
        model = MatrixModel(np.zeros(nproc), np.zeros((nproc, nproc)))
        mapping = tuple(
            int(m) for m in rng.integers(0, cluster.size, size=nproc)
        )
        want = oracle_time(model, netmodel, mapping)
        assert abs(evaluate_mapping(model, netmodel, mapping) - want) <= TOL
        times = evaluate_mappings(model, netmodel, [mapping] * 3)
        assert np.all(np.abs(times - want) <= TOL)
