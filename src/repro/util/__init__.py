"""Cross-cutting utilities: errors, validation, deterministic RNG, tables."""

from .errors import (
    ClusterError,
    DeadlockError,
    HMPIError,
    HMPIStateError,
    MachineFailure,
    MappingError,
    MPICommError,
    MPIError,
    MPIGroupError,
    MPITruncationError,
    PMDLError,
    PMDLRuntimeError,
    PMDLSemanticError,
    PMDLSyntaxError,
    ReproError,
)
from .gantt import render_gantt, utilization
from .rng import DEFAULT_SEED, make_rng, spawn_rng
from .tables import Table, format_series, format_table
from .validate import (
    check_length,
    check_nonnegative,
    check_positive,
    check_rank,
    check_square_matrix_of,
    require,
)

__all__ = [
    "ReproError",
    "ClusterError",
    "MPIError",
    "MPICommError",
    "MPIGroupError",
    "MPITruncationError",
    "DeadlockError",
    "MachineFailure",
    "PMDLError",
    "PMDLSyntaxError",
    "PMDLSemanticError",
    "PMDLRuntimeError",
    "HMPIError",
    "HMPIStateError",
    "MappingError",
    "make_rng",
    "spawn_rng",
    "DEFAULT_SEED",
    "Table",
    "render_gantt",
    "utilization",
    "format_table",
    "format_series",
    "require",
    "check_positive",
    "check_nonnegative",
    "check_rank",
    "check_length",
    "check_square_matrix_of",
]
