"""Communication links and network protocols.

The paper's first HNOC challenge is that a common network is *ad hoc*: the
latency and bandwidth of the link between each pair of machines may differ,
and different pairs may be reachable over **multiple protocols** (TCP over
Ethernet, shared memory within a host, a faster interconnect between some
pairs).  A good library should use the fastest protocol available per pair —
MPICH only did this for shared memory + TCP; Nexus and Madeleine did it
generally.

A :class:`Link` therefore carries a *set* of protocols and can either be
pinned to one or pick the fastest for a given message size (protocols with
different latency/bandwidth trade-offs cross over at some size).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ClusterError
from ..util.validate import check_nonnegative, check_positive

__all__ = [
    "Protocol", "Link", "TCP_100MBIT", "SHARED_MEMORY", "FAST_INTERCONNECT",
    "GIGABIT_ETHERNET", "WAN_10MBIT",
]


@dataclass(frozen=True)
class Protocol:
    """A named point-to-point transport with linear cost model.

    Transfer time for ``nbytes`` is ``latency + nbytes / bandwidth`` —
    the classic Hockney model, which is also the model HMPI's estimator
    assumes, so simulation and prediction agree by construction.
    """

    name: str
    latency: float  # seconds per message
    bandwidth: float  # bytes per second

    def __post_init__(self) -> None:
        check_nonnegative(self.latency, f"latency of protocol {self.name!r}", ClusterError)
        check_positive(self.bandwidth, f"bandwidth of protocol {self.name!r}", ClusterError)

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` over this protocol."""
        if nbytes < 0:
            raise ClusterError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency + nbytes / self.bandwidth


# 100 Mbit switched Ethernet of the paper: ~12.5 MB/s, sub-millisecond latency.
TCP_100MBIT = Protocol("tcp-100mbit", latency=1.5e-4, bandwidth=12.5e6)
# Intra-host transport for ranks co-located on one machine.
SHARED_MEMORY = Protocol("shm", latency=2.0e-6, bandwidth=1.0e9)
# A faster pairwise interconnect for multi-protocol experiments.
FAST_INTERCONNECT = Protocol("fast", latency=2.0e-5, bandwidth=1.0e8)
# Gigabit switch within a subnet/site (hierarchical topologies).
GIGABIT_ETHERNET = Protocol("tcp-1gbit", latency=5.0e-5, bandwidth=1.25e8)
# A slow wide-area link between sites (clusters-of-clusters).
WAN_10MBIT = Protocol("wan-10mbit", latency=5.0e-3, bandwidth=1.25e6)


class Link:
    """Directed communication channel between a pair of machines.

    Parameters
    ----------
    protocols:
        Available transports for this pair; at least one.
    pinned:
        Optional protocol name to force, disabling per-message selection —
        this models the standard-MPI limitation of a single protocol
        (benchmarked in ``bench_ablation_protocol``).
    """

    __slots__ = ("protocols", "_pinned")

    def __init__(self, protocols: list[Protocol] | tuple[Protocol, ...], pinned: str | None = None):
        if not protocols:
            raise ClusterError("a link needs at least one protocol")
        names = [p.name for p in protocols]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate protocol names on link: {names}")
        self.protocols: tuple[Protocol, ...] = tuple(protocols)
        self._pinned: str | None = None
        if pinned is not None:
            self.pin(pinned)

    @classmethod
    def single(cls, protocol: Protocol) -> "Link":
        """A link with exactly one protocol."""
        return cls([protocol])

    # ------------------------------------------------------------------
    # protocol selection
    # ------------------------------------------------------------------
    def pin(self, name: str) -> None:
        """Force all transfers to use the named protocol."""
        if name not in {p.name for p in self.protocols}:
            raise ClusterError(f"protocol {name!r} not available on this link")
        self._pinned = name

    def unpin(self) -> None:
        """Re-enable per-message fastest-protocol selection."""
        self._pinned = None

    @property
    def pinned(self) -> str | None:
        return self._pinned

    def protocol_for(self, nbytes: int) -> Protocol:
        """The protocol a message of ``nbytes`` will travel over."""
        if self._pinned is not None:
            for p in self.protocols:
                if p.name == self._pinned:
                    return p
        return min(self.protocols, key=lambda p: p.transfer_time(nbytes))

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` with the selected protocol."""
        return self.protocol_for(nbytes).transfer_time(nbytes)

    # Representative parameters used by estimators that need a single
    # (latency, bandwidth) pair for symbolic reasoning.
    def effective_latency(self, nbytes: int = 1) -> float:
        return self.protocol_for(nbytes).latency

    def effective_bandwidth(self, nbytes: int = 1 << 20) -> float:
        return self.protocol_for(nbytes).bandwidth

    def __repr__(self) -> str:
        names = "/".join(p.name for p in self.protocols)
        pin = f", pinned={self._pinned!r}" if self._pinned else ""
        return f"Link({names}{pin})"
