"""The PMDL compiler: source text → :class:`PerformanceModel` handles.

This is the reproduction of the paper's model-definition compiler ("a
compiler compiles the description of this performance model to generate a
set of functions [that] make up an algorithm-specific part of the HMPI
runtime system").  Pipeline: tokenize → parse → semantic check → static
analysis → wrap in a :class:`~repro.perfmodel.model.PerformanceModel`
whose bound instances expose the generated volume/scheme functions.

The static analyzer (:mod:`repro.perfmodel.analyze`) runs after the
semantic check: error-severity diagnostics (provable defects such as
out-of-range coordinates or self-transfers) abort compilation with
:class:`~repro.util.errors.PMDLAnalysisError`; warnings and infos are
attached to the resulting model's ``diagnostics`` tuple.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import Any

from ..util.errors import PMDLAnalysisError, PMDLSemanticError
from . import ast
from .analyze import analyze_algorithm
from .diagnostics import Severity
from .model import PerformanceModel
from .parser import parse
from .semantics import check_algorithm

__all__ = [
    "compile_source",
    "compile_model",
    "compile_source_cached",
    "source_digest",
    "compile_cache_stats",
    "clear_compile_cache",
]


def compile_source(
    source: str,
    externals: dict[str, Callable[..., Any]] | None = None,
    analyze: bool = True,
    net_check: bool = False,
) -> dict[str, PerformanceModel]:
    """Compile PMDL source, returning every algorithm it defines by name.

    ``externals`` binds the Python implementations of functions the schemes
    call (the paper's ``GetProcessor``); the semantic checker requires every
    called name to be bound.  Pass ``analyze=False`` to skip the static
    analyzer (e.g. when compiling a deliberately-defective model).

    ``net_check=True`` additionally unrolls each algorithm's scheme into
    its communication net at an automatic probe binding and runs the
    PM08x structural checks (:mod:`repro.perfmodel.netcheck`): a proven
    structural deadlock aborts compilation exactly like an analyzer
    error; warnings join the model's ``diagnostics``.
    """
    externals = dict(externals or {})
    items = parse(source)
    structs: dict[str, ast.StructDef] = {}
    models: dict[str, PerformanceModel] = {}
    for item in items:
        if isinstance(item, ast.StructDef):
            if item.name in structs:
                raise PMDLSemanticError(f"duplicate struct definition {item.name!r}")
            structs[item.name] = item
        else:
            if item.name in models:
                raise PMDLSemanticError(f"duplicate algorithm definition {item.name!r}")
            check_algorithm(item, structs, frozenset(externals))
            diags = list(analyze_algorithm(item, structs)) if analyze else []
            if net_check:
                from .netcheck import check_algorithm_net
                diags += check_algorithm_net(item, structs, externals)
            errors = [d for d in diags if d.severity >= Severity.ERROR]
            if errors:
                details = "\n  ".join(d.render() for d in errors)
                raise PMDLAnalysisError(
                    f"static analysis of algorithm {item.name!r} found "
                    f"{len(errors)} error(s):\n  {details}",
                    diagnostics=tuple(errors),
                )
            models[item.name] = PerformanceModel(
                item, structs, externals, diagnostics=tuple(diags))
    if not models:
        raise PMDLSemanticError("source defines no algorithm")
    return models


# ----------------------------------------------------------------------
# compile-by-digest memoisation
# ----------------------------------------------------------------------
# The job server (and any long-lived embedder) compiles the same PMDL
# source over and over — every tenant resubmits its model text with each
# request.  Compilation is pure in (source, externals, flags), so the
# result is memoised under the source digest.  Returned models are
# SHARED instances: callers must treat them as immutable handles (which
# the rest of the stack already does — `bind` never mutates the model).

_COMPILE_CACHE_CAPACITY = 128
_compile_cache: OrderedDict[tuple, dict[str, PerformanceModel]] = OrderedDict()
_compile_cache_lock = threading.Lock()
_compile_cache_hits = 0
_compile_cache_misses = 0


def source_digest(source: str) -> str:
    """Canonical digest of PMDL source text (sha256 hex).

    Line endings are normalised so the same model pasted from different
    platforms digests identically; no other canonicalisation is applied
    (whitespace differences are different sources).
    """
    canonical = source.replace("\r\n", "\n").replace("\r", "\n")
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def compile_source_cached(
    source: str,
    externals: dict[str, Callable[..., Any]] | None = None,
    analyze: bool = True,
    net_check: bool = False,
) -> dict[str, PerformanceModel]:
    """Memoised :func:`compile_source` keyed by source digest + options.

    Externals participate in the key by (name, identity) so rebinding a
    name to a different callable recompiles; callers wanting cache hits
    should pass stable callables (the serve layer memoises its stubs).
    Compilation errors are not cached — a failing source re-raises on
    every call.
    """
    global _compile_cache_hits, _compile_cache_misses
    ext_key = tuple(sorted(
        (name, id(fn)) for name, fn in (externals or {}).items()))
    key = (source_digest(source), ext_key, bool(analyze), bool(net_check))
    with _compile_cache_lock:
        cached = _compile_cache.get(key)
        if cached is not None:
            _compile_cache.move_to_end(key)
            _compile_cache_hits += 1
            return cached
    models = compile_source(source, externals, analyze=analyze,
                            net_check=net_check)
    with _compile_cache_lock:
        _compile_cache_misses += 1
        _compile_cache[key] = models
        while len(_compile_cache) > _COMPILE_CACHE_CAPACITY:
            _compile_cache.popitem(last=False)
    return models


def compile_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for the compile-by-digest cache."""
    with _compile_cache_lock:
        return {
            "hits": _compile_cache_hits,
            "misses": _compile_cache_misses,
            "size": len(_compile_cache),
        }


def clear_compile_cache() -> None:
    """Drop every memoised compilation (tests and long-lived servers)."""
    global _compile_cache_hits, _compile_cache_misses
    with _compile_cache_lock:
        _compile_cache.clear()
        _compile_cache_hits = 0
        _compile_cache_misses = 0


def compile_model(
    source: str,
    externals: dict[str, Callable[..., Any]] | None = None,
    name: str | None = None,
    analyze: bool = True,
    net_check: bool = False,
) -> PerformanceModel:
    """Compile PMDL source expected to define one algorithm (or pick by name)."""
    models = compile_source(source, externals, analyze=analyze,
                            net_check=net_check)
    if name is not None:
        try:
            return models[name]
        except KeyError:
            raise PMDLSemanticError(
                f"source defines no algorithm named {name!r}; "
                f"found {sorted(models)}"
            ) from None
    if len(models) != 1:
        raise PMDLSemanticError(
            f"source defines {len(models)} algorithms {sorted(models)}; "
            "pass `name` to choose one"
        )
    return next(iter(models.values()))
