"""Chrome trace-event JSON export — open any run in Perfetto.

Converts an engine :class:`~repro.mpi.tracing.Tracer` (per-rank
compute/send/recv/collective/fault events) and a runtime
:class:`~repro.obs.spans.SpanLog` (nested ``HMPI_*`` operation spans)
into the Trace Event Format consumed by ``chrome://tracing`` and
https://ui.perfetto.dev: load the emitted file and you get one lane per
rank for substrate activity plus one lane per rank for runtime spans,
nested by containment, with all attributes in the args pane.

Timestamps are **virtual** microseconds (the simulator's logical clock),
declared via ``displayTimeUnit: "ms"`` so Perfetto's ruler reads in
natural units.  Instant events (rank death) use phase ``"i"``; everything
with an extent uses complete events (``"X"`` with ``dur``), which
Perfetto nests within a thread lane by containment — exactly the
parent/child structure :class:`SpanLog` records.

:func:`validate_chrome_trace` is the schema gate the tests and the CI
smoke job run: it checks the structural invariants the viewers rely on
(phases, non-negative timestamps/durations, integer pid/tid, metadata
shape, JSON-serialisability) and returns a list of violations.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mpi.tracing import Tracer
    from .spans import SpanLog

__all__ = ["chrome_trace", "validate_chrome_trace", "write_chrome_trace",
           "RANKS_PID", "RUNTIME_PID"]

#: pid of the engine (per-rank substrate activity) lanes.
RANKS_PID = 1
#: pid of the runtime span lanes.
RUNTIME_PID = 2

_SECONDS_TO_US = 1e6

#: Engine event kinds rendered as instants rather than durations.
_INSTANT_KINDS = {"death"}

#: Category per engine event kind (Perfetto colours by category).
_KIND_CATEGORY = {
    "compute": "compute",
    "send": "comm",
    "recv": "comm",
    "coll": "comm",
    "retransmit": "fault",
    "death": "fault",
    "repair": "fault",
}


def _event_name(e: Any) -> str:
    label = getattr(e, "label", "")
    return f"{e.kind}:{label}" if label else e.kind


def _event_args(e: Any) -> dict[str, Any]:
    args: dict[str, Any] = {}
    if e.peer >= 0:
        args["peer"] = e.peer
    if e.nbytes:
        args["nbytes"] = e.nbytes
    if e.tag:
        args["tag"] = e.tag
    if e.volume:
        args["volume"] = e.volume
    label = getattr(e, "label", "")
    if label:
        args["label"] = label
    return args


def chrome_trace(tracer: "Tracer | None" = None,
                 spans: "SpanLog | None" = None,
                 metadata: dict[str, Any] | None = None) -> dict[str, Any]:
    """Build a Trace Event Format document from a run's recordings.

    Either source may be None or empty; the result is always a valid
    (possibly event-free) trace document.
    """
    events: list[dict[str, Any]] = []
    ranks: set[int] = set()

    def name_lanes(pid: int, process: str, tids: set[int],
                   tid_fmt: str) -> None:
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process}})
        for tid in sorted(tids):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": tid_fmt.format(tid)}})
            events.append({"name": "thread_sort_index", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"sort_index": tid}})

    if tracer is not None and len(tracer) > 0:
        trace_events = list(tracer.events)
        ranks = {e.rank for e in trace_events}
        name_lanes(RANKS_PID, "ranks (engine)", ranks, "rank {}")
        for e in trace_events:
            base = {
                "name": _event_name(e),
                "cat": _KIND_CATEGORY.get(e.kind, "other"),
                "pid": RANKS_PID,
                "tid": e.rank,
                "ts": e.t0 * _SECONDS_TO_US,
                "args": _event_args(e),
            }
            if e.kind in _INSTANT_KINDS:
                base["ph"] = "i"
                base["s"] = "t"  # thread-scoped instant
            else:
                base["ph"] = "X"
                base["dur"] = max(0.0, (e.t1 - e.t0) * _SECONDS_TO_US)
            events.append(base)

    if spans is not None and len(spans) > 0:
        span_list = spans.as_dicts()
        span_ranks = {s["rank"] for s in span_list}
        name_lanes(RUNTIME_PID, "runtime (HMPI spans)", span_ranks,
                   "runtime rank {}")
        for s in span_list:
            args = {k: _jsonable(v) for k, v in s["attrs"].items()}
            args["span_id"] = s["span_id"]
            if s["parent_id"] is not None:
                args["parent_id"] = s["parent_id"]
            events.append({
                "name": s["name"],
                "cat": "runtime",
                "ph": "X",
                "pid": RUNTIME_PID,
                "tid": s["rank"],
                "ts": s["t0"] * _SECONDS_TO_US,
                "dur": max(0.0, (s["t1"] - s["t0"]) * _SECONDS_TO_US),
                "args": args,
            })

    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.chrometrace",
            "clock": "virtual",
            **(metadata or {}),
        },
    }
    return doc


def _jsonable(value: Any) -> Any:
    """Coerce a span attribute to something JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


#: Phases the validator accepts (the subset this exporter emits plus the
#: counter/flow phases a hand-edited trace may add).
_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "C", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(doc: Any) -> list[str]:
    """Structural validation of a Trace Event Format document.

    Returns a list of human-readable violations (empty when the document
    is well-formed).  Checks the invariants Perfetto/``chrome://tracing``
    rely on rather than the full (loose) spec.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"document is not JSON-serialisable: {exc}")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing event name")
        for fld in ("pid", "tid"):
            if not isinstance(ev.get(fld), int):
                problems.append(f"{where}: {fld} must be an integer")
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: metadata event needs args")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            problems.append(f"{where}: instant scope must be g/p/t")
    return problems


def write_chrome_trace(path: str, doc: dict[str, Any]) -> None:
    """Validate and write the trace document (raises on a bad document)."""
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid Chrome trace: " + "; ".join(problems)
        )
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
