"""Ablation — process-selection algorithms.

DESIGN.md calls out the mapper as a design choice the paper delegates to
the mpC runtime [7].  This bench compares the three implemented strategies
(and the exhaustive oracle) on the paper network for an EM3D instance:
solution quality (predicted execution time of the chosen group) and the
wall-clock cost of the selection itself.  A second section measures the
runtime's selection cache: the cost of a cold ``HMPI_Timeof``-style
selection versus repeated (warm) ones on the same model.

With ``--smoke``, a quick regression check compares the default mapper's
selection cost against the recorded baseline in
``benchmarks/baselines/mapper_smoke.json`` (fails beyond 2×).
"""

import json
import pathlib
import time

import pytest

from repro.apps.em3d import bind_em3d_model, generate_problem
from repro.cluster import paper_network
from repro.core import (
    DefaultMapper,
    ExhaustiveMapper,
    GreedyMapper,
    NetworkModel,
    RefineMapper,
)
from repro.core.runtime import HMPIRuntimeState
from repro.util.tables import Table

P = 7
K = 100
WARM_REPEATS = 200
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "mapper_smoke.json"


def _make_problem():
    problem = generate_problem(p=P, total_nodes=21_000, seed=5,
                               boundary_fraction=0.3)
    model = bind_em3d_model(problem, K)
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    return model, cluster, netmodel


def _compare():
    model, cluster, netmodel = _make_problem()
    candidates = list(range(cluster.size))
    fixed = {model.parent_index(): 0}

    mappers = [
        ("greedy", GreedyMapper()),
        ("refine(greedy)", RefineMapper(seed=GreedyMapper())),
        ("default", DefaultMapper()),
        ("exhaustive", ExhaustiveMapper()),
    ]
    rows = []
    for name, mapper in mappers:
        t0 = time.perf_counter()
        mapping = mapper.select(model, netmodel, candidates, fixed)
        wall = time.perf_counter() - t0
        rows.append((name, mapping.time, wall * 1000, mapping.processes))
    return rows


def _cache_profile():
    """Cold vs warm selection through the runtime's selection cache."""
    model, cluster, netmodel = _make_problem()
    state = HMPIRuntimeState(netmodel)

    t0 = time.perf_counter()
    cold_mapping = state.select(model)
    cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(WARM_REPEATS):
        warm_mapping = state.select(model)
    warm = (time.perf_counter() - t0) / WARM_REPEATS

    assert warm_mapping is cold_mapping
    stats = state.selection_stats
    assert stats.cache_hits == WARM_REPEATS and stats.cache_misses == 1
    return cold * 1000, warm * 1000


def test_ablation_mapper(benchmark, report):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    cold_ms, warm_ms = _cache_profile()

    t = Table("mapper", "predicted time (s)", "selection cost (ms)",
              title=f"Ablation — mapping algorithms (EM3D, p={P}, paper network)")
    for name, pred, wall, _ in rows:
        t.add(name, pred, wall)
    report.emit(t.render())

    c = Table("selection", "cost (ms)",
              title="Selection cache (DefaultMapper via the runtime)")
    c.add("cold (first call)", cold_ms)
    c.add(f"warm (cached, avg of {WARM_REPEATS})", warm_ms)
    c.add("speedup (x)", cold_ms / warm_ms)
    report.emit(c.render())

    by_name = {name: pred for name, pred, _, _ in rows}
    oracle = by_name["exhaustive"]
    # Quality ladder: refinement never hurts the greedy seed; the default
    # lands within 10% of the oracle; nothing beats the oracle.
    assert by_name["refine(greedy)"] <= by_name["greedy"] + 1e-12
    assert by_name["default"] <= oracle * 1.10
    for name, pred, _, _ in rows:
        assert pred >= oracle - 1e-9
    # The selection cache must make repeated Timeof/Group_create calls at
    # least 5x cheaper than the cold selection (in practice it is O(1)
    # and orders of magnitude cheaper).
    assert cold_ms / warm_ms >= 5.0


def test_mapper_selection_smoke(smoke):
    """Fail if default-mapper selection regressed >2x vs the baseline."""
    if not smoke:
        pytest.skip("smoke regression check runs with --smoke")
    baseline = json.loads(BASELINE_PATH.read_text())
    model, cluster, netmodel = _make_problem()
    candidates = list(range(cluster.size))
    fixed = {model.parent_index(): 0}

    best = float("inf")
    for _ in range(3):
        mapper = DefaultMapper()
        t0 = time.perf_counter()
        mapper.select(model, netmodel, candidates, fixed)
        best = min(best, time.perf_counter() - t0)

    # Generous floor keeps slow shared CI machines from flaking; beyond
    # that, >2x over the recorded baseline is a regression.
    limit_ms = max(2.0 * baseline["default_selection_ms"], 50.0)
    assert best * 1000 <= limit_ms, (
        f"default mapper selection took {best * 1000:.2f} ms, "
        f"limit {limit_ms:.2f} ms (baseline "
        f"{baseline['default_selection_ms']:.2f} ms recorded "
        f"{baseline['recorded']})"
    )
