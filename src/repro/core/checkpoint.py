"""Checkpoint/rollback support for fault-tolerant HMPI applications.

A :class:`CheckpointStore` models stable storage attached to the host
machine: group members push per-part snapshots of their application state
(keyed by a label, an iteration number, and a part index), and after a
group repair the survivors — plus any newly drafted members — restore the
*latest complete* checkpoint, i.e. the highest iteration for which every
part arrived.  A member that dies mid-save leaves that iteration
incomplete, so rollback never observes a torn snapshot.

The store itself is shared Python state (the simulator's ranks are
threads); virtual-time cost is charged explicitly through
:func:`charged_save` / :func:`charged_load`, which bill the transfer of
the checkpointed bytes over the link between the member's machine and the
host machine — the same Hockney link model the engine charges for
messages.  Completeness is judged against the ``nparts`` declared at save
time, so checkpoints written under different group sizes (before and
after a repair) coexist; :meth:`CheckpointStore.discard_after` drops the
partial future left behind by a failure before the group resumes.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any

import numpy as np

from ..util.errors import HMPIStateError

__all__ = ["CheckpointStore", "charged_save", "charged_load", "nbytes_of"]


def nbytes_of(data: Any) -> int:
    """Modelled size of a checkpoint payload in bytes.

    NumPy arrays report their true buffer size; containers sum their
    elements; scalars and strings use a small fixed estimate.  This feeds
    the link-cost charge, so a rough size is enough.
    """
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (tuple, list)):
        return sum(nbytes_of(item) for item in data)
    if isinstance(data, dict):
        return sum(nbytes_of(k) + nbytes_of(v) for k, v in data.items())
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, str):
        return len(data.encode())
    return 8  # scalar-ish


def _snapshot(data: Any) -> Any:
    """Deep-enough copy so later in-place mutation cannot corrupt a saved
    checkpoint (arrays are the mutable state that matters here)."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, tuple):
        return tuple(_snapshot(item) for item in data)
    if isinstance(data, list):
        return [_snapshot(item) for item in data]
    if isinstance(data, dict):
        return {k: _snapshot(v) for k, v in data.items()}
    return data


class CheckpointStore:
    """Thread-safe in-memory stable storage for iteration checkpoints.

    One store serves a whole run; every rank may call every method.  A
    checkpoint is addressed by ``(key, iteration)`` and consists of
    ``nparts`` parts (one per group member).  It becomes *complete* — and
    thus restorable — once all parts have been saved.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # key -> iteration -> {"nparts": int, "parts": {part: data}}
        self._data: dict[str, dict[int, dict[str, Any]]] = {}
        self.saves = 0          # parts written
        self.restores = 0       # complete checkpoints read back

    def save(self, key: str, iteration: int, part: int, nparts: int,
             data: Any) -> None:
        """Write one member's part of checkpoint ``(key, iteration)``.

        All writers of one iteration must agree on ``nparts``; the payload
        is snapshotted (arrays copied) at call time.
        """
        if nparts < 1 or not 0 <= part < nparts:
            raise HMPIStateError(
                f"invalid checkpoint part {part}/{nparts} for {key!r}@{iteration}"
            )
        payload = _snapshot(data)
        with self._lock:
            entry = self._data.setdefault(key, {}).get(iteration)
            if entry is None:
                entry = {"nparts": nparts, "parts": {}}
                self._data[key][iteration] = entry
            elif entry["nparts"] != nparts:
                raise HMPIStateError(
                    f"checkpoint {key!r}@{iteration} already started with "
                    f"{entry['nparts']} parts, got nparts={nparts}"
                )
            entry["parts"][part] = payload
            self.saves += 1

    def is_complete(self, key: str, iteration: int) -> bool:
        with self._lock:
            entry = self._data.get(key, {}).get(iteration)
            return entry is not None and len(entry["parts"]) == entry["nparts"]

    def latest_complete(self, key: str) -> int | None:
        """Highest iteration with all parts present, or None."""
        with self._lock:
            best = None
            for it, entry in self._data.get(key, {}).items():
                if len(entry["parts"]) == entry["nparts"]:
                    if best is None or it > best:
                        best = it
            return best

    def load(self, key: str, iteration: int) -> list[Any]:
        """Parts of a complete checkpoint, ordered by part index."""
        with self._lock:
            entry = self._data.get(key, {}).get(iteration)
            if entry is None or len(entry["parts"]) != entry["nparts"]:
                raise HMPIStateError(
                    f"checkpoint {key!r}@{iteration} is missing or incomplete"
                )
            self.restores += 1
            return [_snapshot(entry["parts"][i])
                    for i in range(entry["nparts"])]

    def discard_after(self, key: str, iteration: int) -> None:
        """Drop every checkpoint of ``key`` newer than ``iteration``.

        Called on rollback: partial checkpoints the failed epoch left
        behind must not collide with the resumed run's saves (which may
        use a different part count after repair).
        """
        with self._lock:
            data = self._data.get(key)
            if data is None:
                return
            for it in [it for it in data if it > iteration]:
                del data[it]

    def iterations(self, key: str) -> list[int]:
        """All iterations with any saved part (complete or not), sorted."""
        with self._lock:
            return sorted(self._data.get(key, {}))


def _transfer_seconds(hmpi: Any, nbytes: int) -> float:
    """Link cost between the caller's machine and the host machine."""
    from .runtime import HOST_RANK  # local import: runtime imports us

    netmodel = hmpi.state.netmodel
    me = hmpi.env.machine_index
    host = netmodel.machine_of(HOST_RANK)
    if me == host:
        return 0.0
    return netmodel.transfer_time(me, host, nbytes)


def _ckpt_span(hmpi: Any, name: str, **attrs: Any):
    """Observability span around a checkpoint transfer (no-op when the
    run carries no obs bundle)."""
    obs = getattr(hmpi.state, "obs", None)
    if obs is None:
        return nullcontext()
    return obs.spans.span(name, hmpi.rank, hmpi.env.wtime, **attrs)


def charged_save(hmpi: Any, store: CheckpointStore, key: str, iteration: int,
                 part: int, nparts: int, data: Any) -> float:
    """Save one part, charging the member's clock for shipping it to the
    host's stable storage; returns the seconds charged."""
    nbytes = nbytes_of(data)
    with _ckpt_span(hmpi, "checkpoint_save", key=key, iteration=iteration,
                    part=part, nparts=nparts, nbytes=nbytes) as sp:
        cost = _transfer_seconds(hmpi, nbytes)
        if cost > 0.0:
            hmpi.env.elapse(cost)
        store.save(key, iteration, part, nparts, data)
        if sp is not None:
            sp.attrs["cost"] = cost
            obs = hmpi.state.obs
            obs.metrics.counter("hmpi.checkpoint.saves").inc()
            obs.metrics.histogram("hmpi.checkpoint.save_bytes").observe(nbytes)
    return cost


def charged_load(hmpi: Any, store: CheckpointStore, key: str,
                 iteration: int) -> list[Any]:
    """Load a complete checkpoint, charging for pulling it back from the
    host's stable storage."""
    with _ckpt_span(hmpi, "checkpoint_restore", key=key,
                    iteration=iteration) as sp:
        parts = store.load(key, iteration)
        nbytes = nbytes_of(parts)
        cost = _transfer_seconds(hmpi, nbytes)
        if cost > 0.0:
            hmpi.env.elapse(cost)
        if sp is not None:
            sp.attrs.update(nbytes=nbytes, cost=cost)
            obs = hmpi.state.obs
            obs.metrics.counter("hmpi.checkpoint.restores").inc()
    return parts
