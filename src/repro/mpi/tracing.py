"""Execution tracing for the virtual-time engine.

A :class:`Tracer` attached to a run records every compute interval,
message send and receive completion with its virtual-time span, per rank.
Traces feed the text Gantt renderer (:mod:`repro.util.gantt`), the
model-vs-execution validation tests, and general debugging ("why is rank
3's clock so far ahead?").

Recording is lock-protected and adds only O(1) work per event; runs
without a tracer pay a single None-check.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded activity of one rank.

    kind:
        ``"compute"`` (t0 → t1 of modelled work), ``"send"`` (t0 = call
        time, t1 = CPU-side completion; ``peer``/``nbytes``/``tag`` set),
        ``"recv"`` (t0 = when the wait charged the clock, t1 = arrival
        virtual time; t0 == t1 unless the receiver was early),
        ``"coll"`` (a collective call's full extent at one rank;
        ``label`` names the collective — the wait portions render where
        no finer-grained activity overlaps), ``"retransmit"`` (backoff
        timer charged while masking a transient link fault; ``peer`` is
        the destination), ``"death"`` (the rank's machine failed;
        t0 == t1 == failure vtime, ``label`` is the machine name), or
        ``"repair"`` (the rank's participation in a group repair;
        ``label`` carries the broken gid).
    """

    rank: int
    kind: str
    t0: float
    t1: float
    peer: int = -1
    nbytes: int = 0
    tag: int = 0
    volume: float = 0.0
    label: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects :class:`TraceEvent` records from a run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_rank(self, rank: int) -> list[TraceEvent]:
        """Events of one rank, ordered by start time."""
        return sorted(
            (e for e in self.events if e.rank == rank),
            key=lambda e: (e.t0, e.t1),
        )

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def total_compute_seconds(self, rank: int) -> float:
        """Sum of modelled compute time charged to one rank."""
        return sum(e.duration for e in self.of_rank(rank) if e.kind == "compute")

    def total_bytes_sent(self, rank: int | None = None) -> int:
        """Bytes sent by one rank (or by everyone)."""
        return sum(
            e.nbytes for e in self.events
            if e.kind == "send" and (rank is None or e.rank == rank)
        )

    def makespan(self) -> float:
        return max((e.t1 for e in self.events), default=0.0)

    def nranks(self) -> int:
        return 1 + max((e.rank for e in self.events), default=-1)

    def __len__(self) -> int:
        return len(self.events)
