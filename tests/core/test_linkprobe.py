"""Link calibration by ping-pong probing."""

import pytest

from repro.cluster import (
    FAST_INTERCONNECT,
    TCP_100MBIT,
    Link,
    random_network,
    uniform_network,
)
from repro.core.linkprobe import LinkEstimate, fit_hockney, ping_pong, probe_links
from repro.mpi import run_mpi
from repro.util.errors import HMPIError


class TestFitHockney:
    def test_exact_two_point_fit(self):
        lat, bw = 1e-4, 1e7
        t = lambda n: lat + n / bw
        est = fit_hockney(t(1000), 1000, t(1_000_000), 1_000_000)
        assert est.latency == pytest.approx(lat)
        assert est.bandwidth == pytest.approx(bw)

    def test_degenerate_times(self):
        est = fit_hockney(0.5, 100, 0.5, 10_000)
        assert est.latency == pytest.approx(0.5)
        assert est.bandwidth > 1e12

    def test_needs_distinct_sizes(self):
        with pytest.raises(HMPIError):
            fit_hockney(0.1, 100, 0.2, 100)

    def test_transfer_time(self):
        est = LinkEstimate(latency=0.001, bandwidth=1e6)
        assert est.transfer_time(1_000_000) == pytest.approx(1.001)


class TestPingPong:
    def test_one_way_time(self):
        cluster = uniform_network([100.0, 100.0])
        nbytes = 1_250_000  # 0.1 s over TCP

        def app(env):
            return ping_pong(env.comm_world, 1 - env.rank, nbytes)

        res = run_mpi(app, cluster)
        # driver (rank 0) returns the one-way estimate
        expected = TCP_100MBIT.transfer_time(nbytes)
        assert res.results[0] == pytest.approx(expected, rel=0.02)

    def test_self_probe_rejected(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            with pytest.raises(HMPIError):
                ping_pong(env.comm_world, env.rank, 100)
            env.comm_world.barrier()
            return True

        run_mpi(app, cluster)


class TestProbeLinks:
    def test_recovers_configured_parameters(self):
        cluster = uniform_network([50.0, 50.0, 50.0])

        def app(env):
            return probe_links(env)

        res = run_mpi(app, cluster)
        for estimates in res.results:
            for pair, est in estimates.items():
                assert est.latency == pytest.approx(TCP_100MBIT.latency, rel=0.1)
                assert est.bandwidth == pytest.approx(TCP_100MBIT.bandwidth, rel=0.02)

    def test_detects_heterogeneous_links(self):
        cluster = uniform_network([50.0, 50.0, 50.0])
        cluster.set_link(0, 1, Link.single(FAST_INTERCONNECT))

        def app(env):
            return probe_links(env)

        res = run_mpi(app, cluster)
        est = res.results[0]
        assert est[(0, 1)].bandwidth == pytest.approx(
            FAST_INTERCONNECT.bandwidth, rel=0.05
        )
        assert est[(0, 2)].bandwidth == pytest.approx(
            TCP_100MBIT.bandwidth, rel=0.05
        )

    def test_all_ranks_share_estimates(self):
        cluster = random_network(4, seed=6)

        def app(env):
            return probe_links(env, repeats=2)

        res = run_mpi(app, cluster)
        reference = res.results[0]
        for other in res.results[1:]:
            assert set(other) == set(reference)
            for pair in reference:
                assert other[pair].bandwidth == pytest.approx(
                    reference[pair].bandwidth
                )

    def test_estimates_match_random_network_truth(self):
        cluster = random_network(3, seed=11)

        def app(env):
            return probe_links(env)

        res = run_mpi(app, cluster)
        est = res.results[0]
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                true_time = cluster.transfer_time(i, j, 1 << 20)
                assert est[(i, j)].transfer_time(1 << 20) == pytest.approx(
                    true_time, rel=0.05
                )
