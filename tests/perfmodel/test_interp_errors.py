"""Error handling in the PMDL evaluator."""

import pytest

from repro.perfmodel.interp import ActionVisitor, Environment, Interpreter
from repro.perfmodel.parser import parse, parse_expression
from repro.util.errors import PMDLRuntimeError


interp = Interpreter()


def ev(src, env=None):
    return interp.eval(parse_expression(src), env or Environment())


class NullVisitor(ActionVisitor):
    def compute(self, percent, coords):
        pass

    def transfer(self, percent, src, dst):
        pass


def run(body, params=None, structs_src=""):
    src = f"""
    {structs_src}
    algorithm A(int p) {{
      coord I=p;
      node {{I>=0: bench*(1);}};
      scheme {{ {body} }};
    }}
    """
    alg = parse(src)[-1]
    structs = {s.name: s for s in parse(src)[:-1]}
    Interpreter(structs).exec_block(
        alg.scheme.body, Environment(params or {"p": 2}), NullVisitor()
    )


class TestExpressionErrors:
    def test_assignment_to_literal(self):
        with pytest.raises(PMDLRuntimeError, match="assignment target"):
            ev("5 = 3")

    def test_assignment_to_undeclared(self):
        with pytest.raises(PMDLRuntimeError, match="undeclared"):
            env = Environment()
            interp.eval(parse_expression("x = 1"), env)

    def test_call_unknown_external(self):
        with pytest.raises(PMDLRuntimeError, match="unknown external"):
            ev("Magic(1)")

    def test_member_assignment_on_scalar(self):
        with pytest.raises(PMDLRuntimeError, match="non-struct"):
            env = Environment({"x": 3})
            interp.eval(parse_expression("x.field = 1"), env)

    def test_index_on_scalar(self):
        with pytest.raises(PMDLRuntimeError, match="bad index"):
            ev("x[0]", Environment({"x": 5}))


class TestEnvironmentErrors:
    def test_pop_base_frame(self):
        env = Environment()
        with pytest.raises(PMDLRuntimeError):
            env.pop()

    def test_contains(self):
        env = Environment({"a": 1})
        assert "a" in env and "b" not in env


class TestStatementErrors:
    def test_struct_initializer_rejected(self):
        with pytest.raises(PMDLRuntimeError, match="initialisers"):
            run("P x = 0;", structs_src="typedef struct {int I;} P;")

    def test_while_runaway_detected(self):
        # A while whose condition never changes trips the iteration guard.
        with pytest.raises(PMDLRuntimeError, match="iterations|terminates"):
            run("int i = 0; for (;;) i = 1;")


class TestStructRepr:
    def test_repr_shows_fields(self):
        from repro.perfmodel.interp import StructValue

        s = StructValue("P", ["I", "J"])
        s.set("I", 7)
        assert "I=7" in repr(s)
