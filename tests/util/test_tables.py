"""Table rendering used by the benchmark harnesses."""

import pytest

from repro.util.tables import Table, format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["n", "time"], [[10, 1.5], [100, 12.25]])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="Fig 9")
        assert out.splitlines()[0] == "Fig 9"

    def test_float_precision(self):
        out = format_table(["x"], [[1.23456789]], precision=2)
        assert "1.23" in out
        assert "1.2345" not in out

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_points(self):
        out = format_series("speedup", [1, 2], [1.5, 3.0])
        assert "series: speedup" in out
        assert "1 -> 1.5000" in out


class TestTable:
    def test_add_and_render(self):
        t = Table("n", "t", title="demo", precision=1)
        t.add(1, 2.0)
        t.add(2, 4.0)
        out = t.render()
        assert "demo" in out
        assert "4.0" in out

    def test_column_extraction(self):
        t = Table("n", "t")
        t.add(1, 10.0)
        t.add(2, 20.0)
        assert t.column("t") == [10.0, 20.0]
        assert t.column("n") == [1, 2]

    def test_wrong_cell_count(self):
        t = Table("a", "b")
        with pytest.raises(ValueError):
            t.add(1)

    def test_unknown_column(self):
        t = Table("a")
        with pytest.raises(ValueError):
            t.column("zzz")
