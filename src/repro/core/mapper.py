"""Process-selection algorithms — the heart of ``HMPI_Group_create``.

Given a bound performance model, the network model, and the set of
available world processes (the parent plus all free processes), a mapper
chooses which process runs each abstract processor so that the *predicted*
execution time is minimal.  Candidates are priced by the compiled
selection engine (:mod:`repro.core.seleng`), which replays the model's
trace from precompiled event arrays and amortises setup across whole
neighbourhoods; :class:`repro.core.estimator.TimelineVisitor` remains the
semantic oracle the engine is pinned to.  The paper defers the selection
algorithms to the mpC runtime [7]; we provide:

- :class:`ExhaustiveMapper` — optimal by enumeration, with optional
  machine-speed symmetry reduction; the oracle used in tests.
- :class:`GreedyMapper` — LPT-style: largest computation volumes onto the
  machines that finish them soonest, with speed sharing.  Fast,
  communication-blind.
- :class:`RefineMapper` — hill-climbing over swaps/moves evaluated with the
  full estimator (communication-aware), seeded by another mapper.
- :class:`DefaultMapper` — greedy seed + refinement; what the HMPI runtime
  uses unless told otherwise.

Every entry point that takes a mapper also accepts its **registry
string** — ``"greedy"``, ``"refine"``, ``"exhaustive"``, ``"anneal"``,
``"default"`` — resolved by :func:`resolve_mapper`.  String specs resolve
to shared default-configured instances (so the runtime's selection cache
can key on mapper identity); pass an instance for custom parameters, and
:func:`register_mapper` to add project-specific strategies.

A mapping may pin abstract processors to specific processes via ``fixed`` —
the runtime pins the model's ``parent`` to the calling host so that "every
newly created group has exactly one process shared with already existing
groups".
"""

from __future__ import annotations

import inspect
import itertools
from abc import ABC, abstractmethod
from collections import Counter
from collections.abc import Callable
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..perfmodel.model import AbstractBoundModel
from ..util.errors import MappingError
from .netmodel import NetworkModel
from .seleng import InterpEvaluator, SelectionStats, TraceEvaluator, make_evaluator

__all__ = [
    "Mapping",
    "Mapper",
    "ExhaustiveMapper",
    "GreedyMapper",
    "RefineMapper",
    "DefaultMapper",
    "MAPPER_REGISTRY",
    "register_mapper",
    "available_mappers",
    "resolve_mapper",
]


@dataclass(frozen=True)
class Mapping:
    """A complete assignment of abstract processors to world processes."""

    processes: tuple[int, ...]  # world rank per abstract processor
    machines: tuple[int, ...]   # machine index per abstract processor
    time: float                 # predicted execution time of one scheme run

    def __post_init__(self) -> None:
        if len(self.processes) != len(self.machines):
            raise MappingError("processes and machines must have equal length")


def _build_mapping(
    processes: Sequence[int],
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    evaluator: TraceEvaluator | InterpEvaluator | None = None,
) -> Mapping:
    machines = tuple(netmodel.machine_of(p) for p in processes)
    if evaluator is None:
        evaluator = TraceEvaluator(model, netmodel)  # default backend
    return Mapping(tuple(processes), machines, evaluator.evaluate(machines))


def _check_inputs(
    model: AbstractBoundModel,
    candidates: Sequence[int],
    fixed: MappingABC[int, int],
) -> None:
    n = model.nproc
    if len(set(candidates)) != len(candidates):
        raise MappingError(f"duplicate candidate processes: {candidates}")
    if len(candidates) < n:
        raise MappingError(
            f"algorithm needs {n} processes but only {len(candidates)} are available"
        )
    for idx, proc in fixed.items():
        if not 0 <= idx < n:
            raise MappingError(f"fixed abstract processor {idx} out of range")
        if proc not in candidates:
            raise MappingError(
                f"fixed process {proc} (abstract {idx}) is not a candidate"
            )
    if len(set(fixed.values())) != len(fixed):
        raise MappingError("two abstract processors fixed to the same process")


class Mapper(ABC):
    """Strategy interface for process selection."""

    @abstractmethod
    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> Mapping:
        """Choose a process per abstract processor minimising predicted time.

        ``stats``, when given, receives the engine's evaluation counters
        (and any mapper-specific counts such as symmetry pruning).
        ``backend`` names the Timeof backend used to price candidates
        (one of :data:`repro.core.seleng.TIMEOF_BACKENDS`; ``None`` means
        the default compiled trace).
        """


def _supports_stats(mapper: Mapper) -> bool:
    """Whether a mapper's ``select`` accepts the ``stats`` keyword.

    Third-party mappers written against the pre-engine interface keep
    working: callers use this probe before passing ``stats`` through.
    """
    try:
        return "stats" in inspect.signature(mapper.select).parameters
    except (TypeError, ValueError):
        return False


def _supports_backend(mapper: Mapper) -> bool:
    """Whether a mapper's ``select`` accepts the ``backend`` keyword.

    Same compatibility probe as :func:`_supports_stats`: mappers written
    before the Timeof backends existed silently keep their default
    pricing.
    """
    try:
        return "backend" in inspect.signature(mapper.select).parameters
    except (TypeError, ValueError):
        return False


def _seed_select(
    seed: Mapper,
    model: AbstractBoundModel,
    netmodel: NetworkModel,
    candidates: Sequence[int],
    fixed: MappingABC[int, int],
    stats: SelectionStats | None,
    backend: str | None = None,
) -> Mapping:
    kwargs: dict = {}
    if stats is not None and _supports_stats(seed):
        kwargs["stats"] = stats
    if backend is not None and _supports_backend(seed):
        kwargs["backend"] = backend
    return seed.select(model, netmodel, candidates, fixed, **kwargs)


class ExhaustiveMapper(Mapper):
    """Optimal selection by enumeration.

    Enumerates injective assignments of the non-fixed abstract processors
    to the remaining candidates, priced in batches through the compiled
    engine.  With ``reduce_symmetry`` (default on), candidate processes
    whose machines have identical speed estimates are treated as
    interchangeable, which collapses the paper's 9-machine search from 9!
    to a few hundred evaluations — exact whenever links are uniform (as on
    the paper's switched Ethernet); set it to False for clusters with
    heterogeneous links.

    ``max_evaluations`` guards against combinatorial blow-up of the
    evaluated assignments; ``max_symmetry_skips`` separately bounds the
    permutations *pruned* by symmetry, so a huge symmetric search space
    cannot spin the enumeration loop unboundedly.  Both counts are
    reported through :class:`SelectionStats`.
    """

    def __init__(
        self,
        reduce_symmetry: bool = True,
        max_evaluations: int = 200_000,
        max_symmetry_skips: int = 5_000_000,
        batch_size: int = 512,
    ):
        self.reduce_symmetry = reduce_symmetry
        self.max_evaluations = max_evaluations
        self.max_symmetry_skips = max_symmetry_skips
        self.batch_size = batch_size

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        _check_inputs(model, candidates, fixed)
        n = model.nproc
        free_slots = [i for i in range(n) if i not in fixed]
        pool = [c for c in candidates if c not in set(fixed.values())]
        evaluator = make_evaluator(model, netmodel, stats, backend)

        base = [0] * n
        for idx, proc in fixed.items():
            base[idx] = proc

        # Equivalence class per candidate process: permutations whose
        # per-slot class sequence was already seen cannot price differently
        # when links are uniform.  With a topology attached, uniformity
        # only holds among leaves of the same parent node (siblings see
        # identical link costs to every other machine), so the class is
        # refined by the machine's parent path.
        class_of: dict[int, int] = {}
        if self.reduce_symmetry:
            topology = netmodel.cluster.topology
            classes: dict[tuple, int] = {}
            for c in candidates:
                m = netmodel.machine_of(c)
                speed = netmodel.speed_of_machine(m)
                parent = topology.parent_key(m) if topology is not None else None
                class_of[c] = classes.setdefault((speed, parent), len(classes))

        best_time = float("inf")
        best_procs: tuple[int, ...] | None = None
        best_machines: tuple[int, ...] | None = None
        evaluations = 0
        skipped = 0
        seen_signatures: set[tuple[int, ...]] = set()
        pending: list[tuple[int, ...]] = []

        def flush() -> None:
            nonlocal best_time, best_procs, best_machines
            if not pending:
                return
            machines = [
                [netmodel.machine_of(p) for p in procs] for procs in pending
            ]
            times = evaluator.evaluate_batch(machines)
            idx = int(np.argmin(times))
            if times[idx] < best_time:
                best_time = float(times[idx])
                best_procs = pending[idx]
                best_machines = tuple(machines[idx])
            pending.clear()

        for combo in itertools.permutations(pool, len(free_slots)):
            assignment = list(base)
            for slot, proc in zip(free_slots, combo):
                assignment[slot] = proc
            if self.reduce_symmetry:
                signature = tuple(class_of[p] for p in assignment)
                if signature in seen_signatures:
                    skipped += 1
                    if skipped > self.max_symmetry_skips:
                        if stats is not None:
                            stats.symmetry_skips += skipped
                        raise MappingError(
                            f"exhaustive search pruned more than "
                            f"{self.max_symmetry_skips} symmetric permutations; "
                            "use GreedyMapper/DefaultMapper"
                        )
                    continue
                seen_signatures.add(signature)
            evaluations += 1
            if evaluations > self.max_evaluations:
                if stats is not None:
                    stats.symmetry_skips += skipped
                raise MappingError(
                    f"exhaustive search exceeded {self.max_evaluations} "
                    "evaluations; use GreedyMapper/DefaultMapper"
                )
            pending.append(tuple(assignment))
            if len(pending) >= self.batch_size:
                flush()
        flush()
        if stats is not None:
            stats.symmetry_skips += skipped
        assert best_procs is not None and best_machines is not None
        return Mapping(best_procs, best_machines, best_time)


class GreedyMapper(Mapper):
    """LPT-style compute-balancing heuristic (communication-blind).

    Sorts abstract processors by computation volume (largest first) and
    assigns each to the candidate process whose machine would finish its
    accumulated volume soonest, honouring speed sharing between co-located
    assignments.  Runs in O(n · |candidates|).

    When the cluster carries a topology, ties on predicted finish time
    break toward **locality**: the candidate whose machine is closest (by
    topology-tree distance) to the machines already chosen.  On the
    equal-speed two-site preset this keeps a group that fits in one site
    inside that site instead of scattering it across the slow wide-area
    link.  Without a topology the tie-break is inert and the selection is
    exactly the historical one (first candidate with the minimal finish).
    """

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        _check_inputs(model, candidates, fixed)
        n = model.nproc
        volumes = model.node_volumes()
        assignment: list[int | None] = [None] * n
        machine_load: Counter[int] = Counter()  # accumulated volume per machine
        used: set[int] = set()
        used_machines: list[int] = []
        topo_aware = netmodel.cluster.topology is not None

        def claim(idx: int, proc: int) -> None:
            assignment[idx] = proc
            m = netmodel.machine_of(proc)
            machine_load[m] += volumes[idx]
            used.add(proc)
            used_machines.append(m)

        for idx, proc in fixed.items():
            claim(idx, proc)

        order = sorted(
            (i for i in range(n) if i not in fixed),
            key=lambda i: -volumes[i],
        )
        for i in order:
            best_proc = None
            best_key = None
            for pos, proc in enumerate(candidates):
                if proc in used:
                    continue
                m = netmodel.machine_of(proc)
                finish = (machine_load[m] + volumes[i]) / netmodel.speed_of_machine(m)
                locality = (
                    sum(netmodel.machine_distance(m, um) for um in used_machines)
                    if topo_aware else 0
                )
                key = (finish, locality, pos)
                if best_key is None or key < best_key:
                    best_key = key
                    best_proc = proc
            assert best_proc is not None  # _check_inputs guarantees capacity
            claim(i, best_proc)

        return _build_mapping(
            [p for p in assignment if p is not None], model, netmodel,
            evaluator=make_evaluator(model, netmodel, stats, backend),
        )


class RefineMapper(Mapper):
    """Hill climbing with the full (communication-aware) estimator.

    Starts from ``seed``'s mapping and repeatedly applies the best
    improving move among (a) swapping the processes of two abstract
    processors and (b) moving one abstract processor to an unused
    candidate, until a local optimum or ``max_rounds``.  Each round's
    whole swap/move neighbourhood is priced with one batched engine call.
    """

    def __init__(self, seed: Mapper | None = None, max_rounds: int = 20):
        self.seed = seed or GreedyMapper()
        self.max_rounds = max_rounds

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> Mapping:
        fixed = dict(fixed or {})
        current = _seed_select(
            self.seed, model, netmodel, candidates, fixed, stats, backend
        )
        n = model.nproc
        pinned = set(fixed.keys())
        evaluator = make_evaluator(model, netmodel, stats, backend)

        for _ in range(self.max_rounds):
            assignment = list(current.processes)
            unused = [c for c in candidates if c not in set(assignment)]
            trials: list[list[int]] = []
            # swap moves
            for i in range(n):
                if i in pinned:
                    continue
                for j in range(i + 1, n):
                    if j in pinned:
                        continue
                    if assignment[i] == assignment[j]:
                        continue
                    trial = list(assignment)
                    trial[i], trial[j] = trial[j], trial[i]
                    trials.append(trial)
            # move-to-unused moves
            for i in range(n):
                if i in pinned:
                    continue
                for proc in unused:
                    trial = list(assignment)
                    trial[i] = proc
                    trials.append(trial)
            if not trials:
                break
            machines = [
                [netmodel.machine_of(p) for p in trial] for trial in trials
            ]
            times = evaluator.evaluate_batch(machines)
            idx = int(np.argmin(times))
            if not times[idx] < current.time:
                break
            current = Mapping(
                tuple(trials[idx]), tuple(machines[idx]), float(times[idx])
            )
        return current


class DefaultMapper(Mapper):
    """The runtime default: greedy seed, then communication-aware refinement."""

    def __init__(self, max_rounds: int = 20):
        self._impl = RefineMapper(seed=GreedyMapper(), max_rounds=max_rounds)

    def select(
        self,
        model: AbstractBoundModel,
        netmodel: NetworkModel,
        candidates: Sequence[int],
        fixed: MappingABC[int, int] | None = None,
        *,
        stats: SelectionStats | None = None,
        backend: str | None = None,
    ) -> Mapping:
        return self._impl.select(
            model, netmodel, candidates, fixed, stats=stats, backend=backend
        )


# ----------------------------------------------------------------------
# mapper registry — string specs for every entry point
# ----------------------------------------------------------------------

#: name -> zero-argument factory producing a default-configured mapper.
MAPPER_REGISTRY: dict[str, Callable[[], Mapper]] = {}

# Shared default instances per registry name: string specs must resolve to
# a stable identity so the runtime's selection cache can key on the mapper.
_RESOLVED: dict[str, Mapper] = {}


def register_mapper(
    name: str, factory: Callable[[], Mapper], *, overwrite: bool = False
) -> None:
    """Register a mapper factory under a string spec (case-insensitive)."""
    key = name.lower()
    if key in MAPPER_REGISTRY and not overwrite:
        raise MappingError(f"mapper {name!r} is already registered")
    MAPPER_REGISTRY[key] = factory
    _RESOLVED.pop(key, None)


def available_mappers() -> tuple[str, ...]:
    """Registered mapper specs, sorted."""
    return tuple(sorted(MAPPER_REGISTRY))


def resolve_mapper(
    spec: "str | Mapper | None", default: Mapper | None = None
) -> Mapper | None:
    """Resolve a mapper spec — instance, registry string, or None.

    Instances pass through unchanged; strings resolve to a shared
    default-configured instance of the registered strategy; ``None``
    resolves to ``default``.
    """
    if spec is None:
        return default
    if isinstance(spec, Mapper):
        return spec
    if isinstance(spec, str):
        key = spec.lower()
        instance = _RESOLVED.get(key)
        if instance is None:
            factory = MAPPER_REGISTRY.get(key)
            if factory is None and key == "anneal":
                from . import samapper  # noqa: F401  (registers "anneal")
                factory = MAPPER_REGISTRY.get(key)
            if factory is None:
                raise MappingError(
                    f"unknown mapper {spec!r}; available: "
                    f"{', '.join(available_mappers())}"
                )
            instance = factory()
            _RESOLVED[key] = instance
        return instance
    raise MappingError(
        f"mapper spec must be a registry string or Mapper instance, "
        f"got {type(spec).__name__}"
    )


register_mapper("greedy", GreedyMapper)
register_mapper("refine", RefineMapper)
register_mapper("exhaustive", ExhaustiveMapper)
register_mapper("default", DefaultMapper)
