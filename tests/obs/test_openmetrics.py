"""OpenMetrics exposition: render shapes, round-trip parse, rejection."""

import math

import pytest

from repro.obs import MetricsRegistry, parse_openmetrics, render_openmetrics


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("hmpi.repairs").inc(3)
    reg.counter("mpi.msgs", rank=0).inc(10)
    reg.counter("mpi.msgs", rank=1).inc(12)
    reg.gauge("engine.heap").set(17.0, vtime=2.5)
    reg.histogram("latency.us", bounds=(1.0, 10.0)).observe(0.5)
    reg.histogram("latency.us", bounds=(1.0, 10.0)).observe(5.0)
    reg.histogram("latency.us", bounds=(1.0, 10.0)).observe(50.0)
    reg.mark_vtime(0.0)
    reg.mark_vtime(9.0)
    return reg


class TestRender:
    def test_counter_gets_total_suffix_and_type_header(self):
        text = render_openmetrics(make_registry())
        assert "# TYPE hmpi_repairs counter" in text
        assert "hmpi_repairs_total 3.0" in text

    def test_labelled_series_share_one_family_header(self):
        text = render_openmetrics(make_registry())
        assert text.count("# TYPE mpi_msgs counter") == 1
        assert 'mpi_msgs_total{rank="0"} 10.0' in text
        assert 'mpi_msgs_total{rank="1"} 12.0' in text

    def test_gauge_carries_vtime_exemplar(self):
        text = render_openmetrics(make_registry())
        assert 'engine_heap 17.0 # {vtime="2.5"} 2.5' in text

    def test_histogram_expands_buckets_sum_count(self):
        text = render_openmetrics(make_registry())
        assert 'latency_us_bucket{le="1.0"} 1' in text
        assert 'latency_us_bucket{le="10.0"} 2' in text
        assert 'latency_us_bucket{le="+Inf"} 3' in text
        assert "latency_us_sum 55.5" in text
        assert "latency_us_count 3" in text

    def test_vtime_window_rendered_as_gauges(self):
        text = render_openmetrics(make_registry())
        assert "repro_vtime_min 0.0" in text
        assert "repro_vtime_max 9.0" in text

    def test_ends_with_eof_and_newline(self):
        text = render_openmetrics(make_registry())
        assert text.endswith("# EOF\n")

    def test_accepts_saved_snapshot_dict(self):
        snap = make_registry().snapshot()
        assert render_openmetrics(snap) == render_openmetrics(make_registry())

    def test_rejects_non_snapshot_sources(self):
        with pytest.raises(TypeError, match="snapshot"):
            render_openmetrics(42)
        with pytest.raises(TypeError, match="snapshot"):
            render_openmetrics({"rows": []})

    def test_rejects_unknown_series_type(self):
        snap = {"metrics": [{"name": "x", "type": "summary", "value": 1.0}]}
        with pytest.raises(ValueError, match="unknown series type"):
            render_openmetrics(snap)

    def test_rejects_pre_v1_histogram_without_buckets(self):
        snap = {"metrics": [{"name": "h", "type": "histogram",
                             "labels": {}, "count": 1, "sum": 2.0}]}
        with pytest.raises(ValueError, match="buckets"):
            render_openmetrics(snap)

    def test_empty_registry_renders_bare_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"


class TestRoundTrip:
    def test_rendered_text_parses(self):
        families = parse_openmetrics(render_openmetrics(make_registry()))
        assert families["hmpi_repairs"]["type"] == "counter"
        assert families["latency_us"]["type"] == "histogram"
        assert families["engine_heap"]["type"] == "gauge"

    def test_parsed_values_match_registry(self):
        families = parse_openmetrics(render_openmetrics(make_registry()))
        samples = {(n, tuple(sorted(l.items()))): v
                   for n, l, v in families["mpi_msgs"]["samples"]}
        assert samples[("mpi_msgs_total", (("rank", "0"),))] == 10.0
        assert samples[("mpi_msgs_total", (("rank", "1"),))] == 12.0
        buckets = {l["le"]: v
                   for n, l, v in families["latency_us"]["samples"]
                   if n.endswith("_bucket")}
        assert buckets == {"1.0": 1.0, "10.0": 2.0, "+Inf": 3.0}


class TestParseRejections:
    GOOD = "# TYPE a counter\na_total 1.0\n# EOF\n"

    def test_good_text_parses(self):
        assert parse_openmetrics(self.GOOD)["a"]["samples"] == [
            ("a_total", {}, 1.0)]

    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE a counter\na_total 1.0\n")

    def test_missing_final_newline(self):
        with pytest.raises(ValueError, match="newline"):
            parse_openmetrics("# TYPE a counter\na_total 1.0\n# EOF")

    def test_sample_without_type_header(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_openmetrics("orphan 1.0\n# EOF\n")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_openmetrics("# TYPE a gauge\na wat\n# EOF\n")

    def test_malformed_labels(self):
        with pytest.raises(ValueError, match="label"):
            parse_openmetrics('# TYPE a gauge\na{rank=0} 1.0\n# EOF\n')

    def test_trailing_garbage(self):
        with pytest.raises(ValueError, match="trailing"):
            parse_openmetrics("# TYPE a gauge\na 1.0 stuff\n# EOF\n")

    def test_unknown_metric_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_openmetrics("# TYPE a widget\na 1.0\n# EOF\n")

    def test_decreasing_histogram_buckets(self):
        bad = ("# TYPE h histogram\n"
               'h_bucket{le="1.0"} 5\n'
               'h_bucket{le="2.0"} 3\n'
               'h_bucket{le="+Inf"} 5\n'
               "h_sum 1.0\nh_count 5\n# EOF\n")
        with pytest.raises(ValueError, match="decrease"):
            parse_openmetrics(bad)

    def test_histogram_series_checked_per_label_set(self):
        # Interleaved label sets are each monotone — must pass.
        good = ("# TYPE h histogram\n"
                'h_bucket{le="1.0",rank="0"} 5\n'
                'h_bucket{le="1.0",rank="1"} 1\n'
                'h_bucket{le="+Inf",rank="0"} 6\n'
                'h_bucket{le="+Inf",rank="1"} 2\n'
                "# EOF\n")
        fams = parse_openmetrics(good)
        assert len(fams["h"]["samples"]) == 4


class TestFormatting:
    def test_special_floats(self):
        reg = MetricsRegistry()
        reg.gauge("g.inf").set(math.inf)
        text = render_openmetrics(reg)
        assert "g_inf +Inf" in text
        parse_openmetrics(text)  # +Inf is a legal float() string

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='say "hi"\nbye').inc()
        text = render_openmetrics(reg)
        assert '\\"hi\\"' in text and "\\n" in text
        families = parse_openmetrics(text)
        (_, labels, _), = families["c"]["samples"]
        assert labels["path"] == 'say "hi"\nbye'
