"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``fig09`` / ``fig10`` / ``fig11``
    Regenerate a paper figure's series and print the table (smaller
    default sweeps than the pytest benchmarks; flags adjust sizes).
``compile FILE``
    Compile a PMDL model file (static analysis included), print the
    canonical source, and — when ``--bind`` supplies parameter values —
    run the consistency linter; analyzer errors and lint issues exit
    nonzero.
``check FILE [FILE ...]``
    Static analysis only: report coded ``PM0xx`` diagnostics without
    binding parameters.  ``--strict`` fails on warnings, ``--json`` emits
    machine-readable reports, ``--apps`` also checks the built-in
    application models.
``cluster``
    Print a preset cluster configuration as JSON (edit it, feed it back to
    experiments).
``topology show`` / ``topology check``
    Render a cluster's hierarchy tree (``show``) or run the topology
    validation diagnostics (``check``; exits nonzero on errors).  Both
    accept ``--preset`` (a topology preset name) or ``--file`` (a cluster
    JSON produced by ``repro cluster``); ``check`` with neither validates
    every topology preset.
``trace``
    Run an instrumented scenario (fault-tolerant Jacobi by default) and
    write its Chrome-trace JSON — load it in Perfetto or
    ``chrome://tracing`` for per-rank lanes plus nested runtime spans.
``stats``
    Run the same scenarios and print the metrics snapshot, selection-
    cache statistics, and the Timeof prediction-accuracy table.
``campaign run/check/list``
    Declarative scenario campaigns (see ``docs/CAMPAIGNS.md``): ``run``
    executes every cell of a campaign JSON and writes ``results.jsonl``
    + ``summary.json``; ``check`` compares results against a committed
    regression baseline (nonzero on drift); ``list`` shows the expanded
    runs of a config, or the driver catalogue without one.  ``run
    --live`` streams done/total + ETA status lines and ``--telemetry``
    appends the event stream as JSONL — both side channels, the results
    files stay byte-identical.
``monitor CONFIG``
    Run a campaign behind a live HTTP endpoint (``/metrics`` in
    OpenMetrics text, ``/snapshot``, ``/events``, ``/healthz``); see
    ``docs/OBSERVABILITY.md``.  ``--hold`` keeps serving after the last
    cell so scrapers can collect the final state.

Option errors (unknown campaign axis, bad registry string, malformed
config) exit with code 2 and a one-line message — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from .apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from .apps.matmul import candidate_block_sizes, run_matmul_hmpi, run_matmul_mpi
from .cluster import multiprotocol_network, paper_network
from .cluster.serialize import cluster_to_json
from .core import GreedyMapper
from .util.tables import Table

__all__ = ["main"]


def _cmd_fig09(args: argparse.Namespace) -> int:
    table = Table("total nodes", "t_MPI (s)", "t_HMPI (s)", "speedup",
                  title="Figure 9 — EM3D, HMPI vs MPI (virtual seconds)")
    for total in args.sizes:
        problem = generate_problem(p=9, total_nodes=total, seed=args.seed)
        mpi = run_em3d_mpi(paper_network(), problem, niter=args.niter, k=100,
                           engine=args.engine)
        hmpi = run_em3d_hmpi(paper_network(), problem, niter=args.niter,
                             k=100, procs_per_machine=args.slots,
                             engine=args.engine)
        table.add(total, mpi.algorithm_time, hmpi.algorithm_time,
                  mpi.algorithm_time / hmpi.algorithm_time)
    print(table.render())
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    mpi = run_matmul_mpi(paper_network(), n=args.n, r=8, m=3, seed=args.seed,
                         engine=args.engine)
    table = Table("l", "t_MPI (s)", "t_HMPI (s)",
                  title=f"Figure 10 — MM time vs generalized block size "
                        f"(n={args.n}, r=8)")
    for l in candidate_block_sizes(args.n, 3):
        hmpi = run_matmul_hmpi(paper_network(), n=args.n, r=8, m=3, l=l,
                               seed=args.seed, mapper=GreedyMapper(),
                               engine=args.engine)
        table.add(l, mpi.algorithm_time, hmpi.algorithm_time)
    print(table.render())
    return 0


def _cmd_fig11(args: argparse.Namespace) -> int:
    from .obs import Observability

    obs = Observability(tracer=False)
    table = Table("n (blocks)", "t_MPI (s)", "t_HMPI (s)", "speedup",
                  title="Figure 11 — MM, HMPI vs MPI (r = l = 9)")
    for n in args.sizes:
        mpi = run_matmul_mpi(paper_network(), n=n, r=9, m=3, seed=args.seed,
                             engine=args.engine)
        hmpi = run_matmul_hmpi(paper_network(), n=n, r=9, m=3, l=9,
                               seed=args.seed, mapper=GreedyMapper(), obs=obs,
                               engine=args.engine)
        table.add(n, mpi.algorithm_time, hmpi.algorithm_time,
                  mpi.algorithm_time / hmpi.algorithm_time)
    print(table.render())
    print()
    print(_selection_stats_table(obs).render())
    return 0


def _selection_stats_table(obs) -> Table:
    """Selection-engine series from the registry, as a printable table."""
    snap = obs.snapshot()
    table = Table("selection metric", "value", title="Selection engine")
    for series in snap["metrics"]:
        if series["name"].startswith("hmpi.selection."):
            table.add(series["name"].removeprefix("hmpi.selection."),
                      int(series["value"]))
    return table


def _parse_fail(pairs: list[str]) -> dict[str, float]:
    schedule = {}
    for pair in pairs:
        name, sep, at = pair.partition("=")
        if not sep:
            raise SystemExit(f"--fail expects MACHINE=VTIME, got {pair!r}")
        try:
            schedule[name] = float(at)
        except ValueError:
            raise SystemExit(f"--fail {name}: {at!r} is not a number")
    return schedule


def _run_observed(args: argparse.Namespace):
    """Run the chosen instrumented scenario; return its Observability."""
    from .obs import Observability

    obs = Observability()
    if args.app == "jacobi":
        from .apps.jacobi import run_jacobi_ft
        from .cluster import FaultSchedule, inject_faults, uniform_network

        cluster = uniform_network([100.0] * args.machines)
        if args.fail:
            inject_faults(cluster, FaultSchedule(_parse_fail(args.fail)))
        result = run_jacobi_ft(cluster, n=args.n, p=args.p, niter=args.niter,
                               k=50, seed=args.seed, obs=obs,
                               engine=args.engine)
        if result.error is not None:
            raise SystemExit(f"jacobi run failed: {result.error}")
        outcome = (f"jacobi n={args.n} p={args.p} niter={args.niter}: "
                   f"{result.repairs} repair(s), "
                   f"{result.checkpoint_saves} checkpoint save(s), "
                   f"makespan {result.makespan:.3f}s")
    else:
        result = run_matmul_hmpi(paper_network(), n=args.n, r=9, m=3,
                                 seed=args.seed, mapper=GreedyMapper(),
                                 obs=obs, engine=args.engine)
        outcome = (f"matmul n={args.n} l={result.block_size_l}: "
                   f"algorithm {result.algorithm_time:.3f}s, "
                   f"makespan {result.makespan:.3f}s")
    return obs, outcome


def _engine_flag(sub) -> None:
    from .mpi.scheduler import ENGINE_BACKENDS

    sub.add_argument("--engine", choices=list(ENGINE_BACKENDS), default=None,
                     help="scheduling backend (default: events, or the "
                          "REPRO_ENGINE environment variable)")


def _scenario_flags(sub) -> None:
    sub.add_argument("--app", choices=["jacobi", "matmul"], default="jacobi")
    _engine_flag(sub)
    sub.add_argument("--n", type=int, default=30,
                     help="problem size (grid rows / blocks)")
    sub.add_argument("--p", type=int, default=4,
                     help="jacobi group size")
    sub.add_argument("--niter", type=int, default=6)
    sub.add_argument("--machines", type=int, default=5,
                     help="jacobi cluster size")
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--fail", nargs="*", metavar="MACHINE=VTIME",
                     default=["m02=0.05"],
                     help="jacobi fault schedule (pass bare --fail for a "
                          "fault-free run)")


def _cmd_trace(args: argparse.Namespace) -> int:
    obs, outcome = _run_observed(args)
    print(outcome)
    obs.write_chrome_trace(args.out, metadata={"app": args.app})
    doc = obs.chrome_trace()
    print(f"wrote {args.out}: {len(doc['traceEvents'])} events "
          f"({obs.snapshot()['spans']} runtime spans) — open in Perfetto "
          f"or chrome://tracing")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(obs.metrics.to_json())
            fh.write("\n")
        print(f"wrote {args.metrics}: metrics snapshot")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    obs, outcome = _run_observed(args)
    snap = obs.snapshot()
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0
    print(outcome)
    print()
    table = Table("metric", "labels", "type", "value",
                  title="Metrics snapshot")
    for series in snap["metrics"]:
        labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
        if series["type"] == "histogram":
            value = "n=0"
            if series["count"]:
                value = (f"n={series['count']} p50={series['p50']:.2e} "
                         f"p95={series['p95']:.2e}")
        else:
            value = f"{series['value']:g}"
        table.add(series["name"], labels or "-", series["type"], value)
    print(table.render())
    print()
    print(obs.accuracy.render())
    return 0


def _parse_bindings(pairs: list[str]) -> dict:
    bindings = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--bind expects NAME=VALUE, got {pair!r}")
        try:
            bindings[name] = json.loads(value)
        except json.JSONDecodeError:
            raise SystemExit(f"--bind {name}: {value!r} is not valid JSON")
    return bindings


def _cmd_compile(args: argparse.Namespace) -> int:
    from .perfmodel import compile_source, lint_model, parse
    from .perfmodel.printer import format_unit
    from .util.errors import PMDLError

    source = open(args.file).read()
    # Externals unknown at compile time: declare every called name as a stub
    # so the semantic checker focuses on structure.
    import re

    called = set(re.findall(r"\b([A-Za-z_]\w*)\s*\(", source))
    keywords = {"algorithm", "coord", "node", "link", "parent", "scheme",
                "sizeof", "par", "for", "if", "while", "bench", "length"}
    externals = {name: (lambda *a: None) for name in called - keywords}
    try:
        models = compile_source(source, externals=externals)
    except PMDLError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"compiled {len(models)} algorithm(s): {', '.join(models)}")
    for name, model in models.items():
        for diag in model.diagnostics:
            print(f"{args.file}: {name}: {diag.render()}")
    print()
    print(format_unit(parse(source)))

    if args.bind:
        bindings = _parse_bindings(args.bind)
        exit_code = 0
        for name, model in models.items():
            wanted = {p: v for p, v in bindings.items()
                      if p in model.param_names}
            try:
                bound = model.bind(**wanted)
            except PMDLError as exc:
                print(f"error binding {name}: {exc}", file=sys.stderr)
                return 1
            report = lint_model(bound)
            print(f"{name}: {report}")
            if not report.ok:
                exit_code = 1
        return exit_code
    return 0


def _check_targets(args: argparse.Namespace) -> list[tuple[str, str, dict | None]]:
    """(name, source, externals) triples for ``check``/``net`` targets.

    The built-in app targets carry their real external functions so the
    net checks can unroll their schemes (matmul's ``GetProcessor``).
    """
    targets: list[tuple[str, str, dict | None]] = []
    for path in args.files:
        targets.append((path, open(path).read(), None))
    if args.apps:
        from .apps.em3d.model import EM3D_MODEL_SOURCE
        from .apps.jacobi.model import JACOBI_MODEL_SOURCE
        from .apps.matmul.model import MM_MODEL_SOURCE, make_get_processor
        targets += [("<app:em3d>", EM3D_MODEL_SOURCE, None),
                    ("<app:matmul>", MM_MODEL_SOURCE,
                     {"GetProcessor": make_get_processor()}),
                    ("<app:jacobi>", JACOBI_MODEL_SOURCE, None)]
    return targets


def _net_dots(targets: list[tuple[str, str, dict | None]]) -> str:
    """Concatenated DOT digraphs of every target's unrolled net.

    Targets that cannot be unrolled (parse errors, unbound externals,
    failing probe binding) contribute a comment instead of a graph —
    mirroring the PM084 skip semantics of the checks themselves.
    """
    from .perfmodel import compile_source, lower_model
    from .perfmodel.netcheck import probe_bindings
    from .util.errors import PMDLError

    chunks: list[str] = []
    for name, source, externals in targets:
        try:
            models = compile_source(source, externals=externals, analyze=False)
            for mname, model in models.items():
                bound = model.bind(**probe_bindings(model))
                chunks.append(f"// {name}: {mname}")
                chunks.append(lower_model(bound).to_dot(title=mname))
        except PMDLError as exc:
            chunks.append(f"// {name}: net unavailable: {exc}")
    return "\n".join(chunks) + "\n"


def _cmd_check(args: argparse.Namespace) -> int:
    from .perfmodel import check_source

    targets = _check_targets(args)
    if not targets:
        print("nothing to check: pass model files and/or --apps",
              file=sys.stderr)
        return 2

    net = args.net or args.net_dot is not None
    reports = [
        check_source(source, target=name, net=net, externals=externals)
        for name, source, externals in targets
    ]
    # One exit computation shared by both output paths: warnings-only
    # stays 0, --strict promotes warnings — identically for JSON and text.
    exit_code = max(r.exit_code(strict=args.strict) for r in reports)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render())
    if args.net_dot is not None:
        with open(args.net_dot, "w") as fh:
            fh.write(_net_dots(targets))
    return exit_code


def _cmd_net(args: argparse.Namespace) -> int:
    from .perfmodel import compile_source, lower_model
    from .perfmodel.netcheck import check_net, probe_bindings
    from .util.errors import PMDLError

    args.files = [args.file] if args.file else []
    args.apps = args.app is not None
    targets = _check_targets(args)
    if args.app is not None:
        targets = [t for t in targets if t[0] == f"<app:{args.app}>"]
    if not targets:
        print("nothing to unroll: pass FILE or --app", file=sys.stderr)
        return 2

    bindings = _parse_bindings(args.bind) if args.bind else None
    exit_code = 0
    dot_chunks: list[str] = []
    traced = False
    for name, source, externals in targets:
        try:
            models = compile_source(source, externals=externals, analyze=False)
        except PMDLError as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 1
        for mname, model in models.items():
            try:
                # User bindings override the probe defaults per parameter,
                # so `--bind p=6` works without spelling out every value.
                wanted = ({p: v for p, v in bindings.items()
                           if p in model.param_names} if bindings else None)
                bound = model.bind(**probe_bindings(model, wanted))
            except PMDLError as exc:
                print(f"error binding {mname}: {exc}", file=sys.stderr)
                return 1
            net = lower_model(bound)
            print(f"{mname}: {net.summary()}")
            for diag in check_net(bound, model.algorithm):
                print(f"  {diag.render()}")
                if diag.severity.name == "ERROR":
                    exit_code = 1
            if args.dot is not None:
                dot_chunks.append(f"// {name}: {mname}")
                dot_chunks.append(net.to_dot(title=mname))
            if args.trace is not None and not traced:
                from .core.netmodel import NetworkModel
                from .obs.chrometrace import write_chrome_trace
                from .obs.netexport import net_chrome_trace

                cluster = paper_network()
                netmodel = NetworkModel(cluster, list(range(cluster.size)))
                machines = [i % cluster.size for i in range(bound.nproc)]
                doc = net_chrome_trace(bound, netmodel, machines, net=net)
                write_chrome_trace(args.trace, doc)
                print(f"{mname}: predicted schedule written to {args.trace} "
                      f"(machines {machines})")
                traced = True
    if args.dot is not None:
        with open(args.dot, "w") as fh:
            fh.write("\n".join(dot_chunks) + "\n")
        print(f"net DOT written to {args.dot}")
    return exit_code


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import TOPOLOGY_PRESETS

    presets = {
        "paper": paper_network,
        "multiprotocol": multiprotocol_network,
        **TOPOLOGY_PRESETS,
    }
    print(cluster_to_json(presets[args.preset]()))
    return 0


def _topology_targets(args: argparse.Namespace) -> list[tuple[str, "object"]]:
    """(name, cluster) pairs selected by --preset/--file flags."""
    from .cluster import TOPOLOGY_PRESETS
    from .cluster.serialize import cluster_from_json

    targets: list[tuple[str, object]] = []
    if args.preset:
        factory = TOPOLOGY_PRESETS.get(args.preset)
        if factory is None:
            raise SystemExit(
                f"unknown topology preset {args.preset!r}; available: "
                f"{', '.join(sorted(TOPOLOGY_PRESETS))}"
            )
        targets.append((args.preset, factory()))
    if args.file:
        targets.append((args.file, cluster_from_json(open(args.file).read())))
    return targets


def _cmd_topology_show(args: argparse.Namespace) -> int:
    targets = _topology_targets(args)
    if not targets:
        raise SystemExit("topology show needs --preset or --file")
    for name, cluster in targets:
        if cluster.topology is None:
            print(f"{name}: no topology attached (flat pairwise mesh)")
            continue
        print(f"{name}:")
        print(cluster.topology.render())
    return 0


def _cmd_topology_check(args: argparse.Namespace) -> int:
    from .cluster import TOPOLOGY_PRESETS

    targets = _topology_targets(args)
    if not targets:
        # Default: validate every topology preset (the CI smoke job).
        targets = [(name, factory()) for name, factory
                   in sorted(TOPOLOGY_PRESETS.items())]
    worst = 0
    for name, cluster in targets:
        if cluster.topology is None:
            print(f"{name}: no topology attached (flat pairwise mesh) — ok")
            continue
        report = cluster.topology.validate(cluster)
        print(f"{name}: {report.render()}")
        if not report.ok:
            worst = 1
    return worst


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _campaign_telemetry(args: argparse.Namespace):
    """Build the side-channel EventBus for ``--live``/``--telemetry``.

    Returns None when neither flag asks for one.  The bus never touches
    the canonical results — progress/ETA lines come from subscriber
    callbacks on campaign events, results.jsonl stays byte-identical.
    """
    from .obs import EventBus

    live = getattr(args, "live", False)
    sink = getattr(args, "telemetry", None)
    if not live and sink is None:
        return None
    bus = EventBus(capacity=4096, sink=sink)
    if live:
        def status_line(event) -> None:
            if (event.category, event.name) != ("campaign", "cell.finish"):
                return
            p = event.payload
            print(f"  live: {p['done']}/{p['total']} cells, "
                  f"last {p['wall_seconds']:.2f}s, "
                  f"ETA {_fmt_eta(p['eta_seconds'])}", flush=True)
        bus.subscribe(status_line)
    return bus


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import load_config, run_campaign

    config = load_config(args.config)
    print(f"campaign {config.name!r}: driver {config.driver.name}, "
          f"{config.n_runs} run(s), seed {config.seed}")

    def progress(spec, row) -> None:
        cell = ", ".join(f"{k}={v}" for k, v in sorted(spec.cell.items()))
        if row["status"] == "ok":
            print(f"  [{spec.index + 1}/{config.n_runs}] {cell}: ok")
        else:
            print(f"  [{spec.index + 1}/{config.n_runs}] {cell}: "
                  f"ERROR {row['error']}")

    bus = _campaign_telemetry(args)
    try:
        writer = run_campaign(config, args.out,
                              progress=None if args.quiet else progress,
                              telemetry=bus)
    finally:
        if bus is not None:
            bus.close()
    errors = sum(1 for r in writer.rows if r["status"] == "error")
    where = f" -> {args.out}/results.jsonl" if args.out else ""
    print(f"{len(writer.rows)} run(s), {errors} error(s){where}")
    return 1 if errors else 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from .campaign import load_config, run_campaign
    from .obs import EventBus, MetricsRegistry, MonitorServer

    config = load_config(args.config)
    registry = MetricsRegistry()
    bus = EventBus(capacity=4096, sink=args.telemetry)

    def progress_gauges(event) -> None:
        # Fold campaign progress into scrapeable series so /metrics shows
        # done/total/ETA alongside whatever the run itself records.
        if event.category != "campaign":
            return
        p = event.payload
        if event.name == "start":
            registry.gauge("campaign.cells.total").set(float(p["total"]))
            registry.gauge("campaign.cells.done").set(0.0)
        elif event.name == "cell.finish":
            registry.gauge("campaign.cells.done").set(float(p["done"]))
            registry.gauge("campaign.eta_seconds").set(
                float(p["eta_seconds"]))
            if p["status"] != "ok":
                registry.counter("campaign.cell.errors").inc()

    bus.subscribe(progress_gauges)
    server = MonitorServer(metrics=registry, telemetry=bus,
                           host=args.host, port=args.port).start()
    print(f"campaign {config.name!r}: monitoring at {server.url} "
          f"(/metrics /snapshot /events /healthz)", flush=True)
    try:
        writer = run_campaign(config, args.out, telemetry=bus)
        errors = sum(1 for r in writer.rows if r["status"] == "error")
        where = f" -> {args.out}/results.jsonl" if args.out else ""
        print(f"{len(writer.rows)} run(s), {errors} error(s){where}",
              flush=True)
        if args.hold > 0:
            import time as _time

            print(f"holding the endpoint for {args.hold:g}s "
                  f"(ctrl-c to stop)", flush=True)
            _time.sleep(args.hold)
        return 1 if errors else 0
    finally:
        server.stop()
        bus.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .obs import EventBus
    from .serve import ServeServer

    bus = EventBus(capacity=4096, sink=args.telemetry)
    server = ServeServer(
        host=args.host, port=args.port, workers=args.workers,
        telemetry=bus,
        max_inflight_per_tenant=args.tenant_quota,
        max_inflight_total=args.max_inflight,
    )

    def announce(srv) -> None:
        print(f"serving HMPI jobs at {srv.url} "
              f"(POST /v1/jobs; /metrics /healthz; "
              f"{args.workers or 'inline'} worker(s))", flush=True)

    try:
        asyncio.run(server.run(on_ready=announce))
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        bus.close()
    return 0


def _cmd_campaign_check(args: argparse.Namespace) -> int:
    from .campaign import check_against_baseline, load_baseline, read_rows

    rows = read_rows(args.results)
    failures = check_against_baseline(rows, load_baseline(args.baseline))
    if failures:
        print(f"{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"{len(rows)} run(s) within tolerance of {args.baseline}")
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from .campaign import DRIVERS, load_config

    if args.config is None:
        table = Table("driver", "parameters", title="Campaign drivers")
        for name, driver in sorted(DRIVERS.items()):
            table.add(name, ", ".join(driver.params))
        print(table.render())
        return 0
    config = load_config(args.config)
    print(f"campaign {config.name!r}: driver {config.driver.name}, "
          f"seed {config.seed}")
    table = Table("run", "seed", "cell",
                  title=f"{config.n_runs} expanded run(s)")
    for spec in config.expand():
        cell = ", ".join(f"{k}={v}" for k, v in sorted(spec.cell.items()))
        table.add(spec.index, spec.seed, cell)
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HMPI reproduction (Lastovetsky & Reddy, IPPS 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p09 = sub.add_parser("fig09", help="EM3D, HMPI vs MPI")
    p09.add_argument("--sizes", type=int, nargs="+",
                     default=[9_000, 18_000, 27_000])
    p09.add_argument("--niter", type=int, default=8)
    p09.add_argument("--seed", type=int, default=42)
    p09.add_argument("--slots", type=int, default=2,
                     help="HMPI process slots per machine")
    _engine_flag(p09)
    p09.set_defaults(fn=_cmd_fig09)

    p10 = sub.add_parser("fig10", help="MM time vs generalized block size")
    p10.add_argument("--n", type=int, default=24)
    p10.add_argument("--seed", type=int, default=10)
    _engine_flag(p10)
    p10.set_defaults(fn=_cmd_fig10)

    p11 = sub.add_parser("fig11", help="MM, HMPI vs MPI")
    p11.add_argument("--sizes", type=int, nargs="+", default=[9, 18, 27])
    p11.add_argument("--seed", type=int, default=11)
    _engine_flag(p11)
    p11.set_defaults(fn=_cmd_fig11)

    pc = sub.add_parser("compile", help="compile + lint a PMDL model file")
    pc.add_argument("file")
    pc.add_argument("--bind", nargs="+", metavar="NAME=VALUE", default=None,
                    help="bind parameters (JSON values) and run the "
                         "consistency linter; lint issues exit nonzero")
    pc.set_defaults(fn=_cmd_compile)

    pchk = sub.add_parser(
        "check", help="static analysis of PMDL files (no parameter binding)")
    pchk.add_argument("files", nargs="*", metavar="FILE")
    pchk.add_argument("--apps", action="store_true",
                      help="also check the built-in application models")
    pchk.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings, not just errors")
    pchk.add_argument("--json", action="store_true",
                      help="machine-readable diagnostic reports")
    pchk.add_argument("--net", action="store_true",
                      help="also unroll each scheme into its communication "
                           "net and run the PM08x structural checks "
                           "(deadlock, orphan messages, multiplicity, "
                           "unreachable transitions)")
    pchk.add_argument("--net-dot", default=None, metavar="FILE",
                      help="write the unrolled nets as Graphviz DOT "
                           "(implies --net)")
    pchk.set_defaults(fn=_cmd_check)

    pn = sub.add_parser(
        "net", help="unroll a PMDL scheme into its communication net")
    pn.add_argument("file", nargs="?", default=None, metavar="FILE")
    pn.add_argument("--app", choices=["em3d", "matmul", "jacobi"],
                    default=None,
                    help="unroll a built-in application model instead")
    pn.add_argument("--bind", nargs="+", metavar="NAME=VALUE", default=None,
                    help="bind parameters (JSON values); default is the "
                         "automatic probe binding")
    pn.add_argument("--dot", default=None, metavar="FILE",
                    help="write the net as Graphviz DOT")
    pn.add_argument("--trace", default=None, metavar="FILE",
                    help="write the predicted firing schedule as "
                         "Chrome-trace JSON (paper cluster, round-robin "
                         "mapping)")
    pn.set_defaults(fn=_cmd_net)

    from .cluster import TOPOLOGY_PRESETS

    pk = sub.add_parser("cluster", help="dump a preset cluster as JSON")
    pk.add_argument("--preset",
                    choices=["paper", "multiprotocol",
                             *sorted(TOPOLOGY_PRESETS)],
                    default="paper")
    pk.set_defaults(fn=_cmd_cluster)

    ptopo = sub.add_parser(
        "topology", help="inspect/validate hierarchical network topologies")
    topo_sub = ptopo.add_subparsers(dest="topology_command", required=True)
    for name, fn, help_text in (
        ("show", _cmd_topology_show, "render the hierarchy tree"),
        ("check", _cmd_topology_check,
         "run validation diagnostics (default: all presets); "
         "exits nonzero on errors"),
    ):
        sp = topo_sub.add_parser(name, help=help_text)
        sp.add_argument("--preset", default=None,
                        help=f"topology preset ({', '.join(sorted(TOPOLOGY_PRESETS))})")
        sp.add_argument("--file", default=None,
                        help="cluster JSON file (repro cluster output)")
        sp.set_defaults(fn=fn)

    pt = sub.add_parser(
        "trace", help="run an instrumented scenario, write Chrome-trace JSON")
    _scenario_flags(pt)
    pt.add_argument("--out", default="trace.json",
                    help="Chrome-trace output path (default trace.json)")
    pt.add_argument("--metrics", default=None, metavar="PATH",
                    help="also write the metrics snapshot JSON here")
    pt.set_defaults(fn=_cmd_trace)

    ps = sub.add_parser(
        "stats", help="run an instrumented scenario, print metrics + accuracy")
    _scenario_flags(ps)
    ps.add_argument("--json", action="store_true",
                    help="print the raw snapshot JSON instead of tables")
    ps.set_defaults(fn=_cmd_stats)

    pcamp = sub.add_parser(
        "campaign", help="declarative scenario campaigns (docs/CAMPAIGNS.md)")
    camp_sub = pcamp.add_subparsers(dest="campaign_command", required=True)
    cr = camp_sub.add_parser(
        "run", help="run every cell of a campaign JSON")
    cr.add_argument("config", metavar="CONFIG", help="campaign JSON file")
    cr.add_argument("--out", default=None, metavar="DIR",
                    help="write results.jsonl + summary.json here")
    cr.add_argument("--quiet", action="store_true",
                    help="no per-run progress lines")
    cr.add_argument("--live", action="store_true",
                    help="stream done/total + ETA status lines "
                         "(side channel; results are unchanged)")
    cr.add_argument("--telemetry", default=None, metavar="FILE",
                    help="append campaign telemetry events as JSONL")
    cr.set_defaults(fn=_cmd_campaign_run)
    cc = camp_sub.add_parser(
        "check", help="compare results against a regression baseline")
    cc.add_argument("results", metavar="RESULTS",
                    help="results.jsonl file (or the --out directory)")
    cc.add_argument("--baseline", required=True, metavar="FILE",
                    help="committed baseline JSON")
    cc.set_defaults(fn=_cmd_campaign_check)
    cl = camp_sub.add_parser(
        "list", help="list a config's expanded runs, or all drivers")
    cl.add_argument("config", nargs="?", default=None, metavar="CONFIG")
    cl.set_defaults(fn=_cmd_campaign_list)

    pm = sub.add_parser(
        "monitor", help="run a campaign behind a live HTTP monitoring "
                        "endpoint (docs/OBSERVABILITY.md)")
    pm.add_argument("config", metavar="CONFIG", help="campaign JSON file")
    pm.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    pm.add_argument("--port", type=int, default=0,
                    help="bind port (default 0 = ephemeral)")
    pm.add_argument("--out", default=None, metavar="DIR",
                    help="write results.jsonl + summary.json here")
    pm.add_argument("--telemetry", default=None, metavar="FILE",
                    help="append telemetry events as JSONL")
    pm.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                    help="keep serving this long after the campaign ends")
    pm.set_defaults(fn=_cmd_monitor)

    psv = sub.add_parser(
        "serve", help="multi-tenant HMPI prediction/selection server "
                      "(docs/SERVING.md)")
    psv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    psv.add_argument("--port", type=int, default=0,
                     help="bind port (default 0 = ephemeral)")
    psv.add_argument("--workers", type=int, default=0,
                     help="worker processes sharding the worlds "
                          "(default 0 = inline threads)")
    psv.add_argument("--tenant-quota", type=int, default=64,
                     help="max in-flight jobs per tenant before 429")
    psv.add_argument("--max-inflight", type=int, default=1024,
                     help="max in-flight jobs server-wide before 429")
    psv.add_argument("--telemetry", default=None, metavar="FILE",
                     help="append serve telemetry events as JSONL")
    psv.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    from .util.errors import OptionError

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except OptionError as exc:
        # Usage errors (bad registry strings, malformed campaign configs,
        # CampaignError) exit like argparse does: message + code 2.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
