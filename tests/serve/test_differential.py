"""The bitwise guarantee: served results equal direct in-process calls.

The server executes through :meth:`repro.serve.exec.Executor.execute` —
the same code path these tests drive directly — and JSON floats
round-trip through ``repr``, so equality here is exact ``==`` on floats,
not approx.  The matrix covers both selection ops, both engines, and
every Timeof backend, plus the check and campaign-cell ops and one
end-to-end HTTP round trip.
"""

import pytest

from repro.apps.em3d.model import EM3D_MODEL_SOURCE
from repro.cluster import paper_network
from repro.core import run_hmpi
from repro.perfmodel import compile_model
from repro.serve import Executor, validate_request

EM3D_PARAMS = {
    "p": 4, "k": 1, "d": [10, 10, 10, 10],
    "dep": [[0, 2, 0, 0], [2, 0, 2, 0], [0, 2, 0, 2], [0, 0, 2, 0]],
}

ENGINES = ("events", "threads")
BACKENDS = ("trace", "net", "interp")


def em3d_request(op, **over):
    raw = {"op": op, "model": EM3D_MODEL_SOURCE,
           "params": EM3D_PARAMS, "cluster": "paper"}
    raw.update(over)
    return validate_request(raw)


def bound_em3d():
    return compile_model(EM3D_MODEL_SOURCE).bind(**EM3D_PARAMS)


def direct_timeof(*, mapper="default", engine=None, backend=None,
                  iterations=1.0):
    model = bound_em3d()

    def app(hmpi):
        if hmpi.is_host():
            return hmpi.timeof(model, mapper, iterations=iterations)
        return None

    res = run_hmpi(app, paper_network(), engine=engine,
                   timeof_backend=backend)
    return res.results[0]


def direct_group_create(*, mapper="default", engine=None, backend=None):
    model = bound_em3d()

    def app(hmpi):
        if hmpi.is_host():
            gid = hmpi.group_create(model, mapper)
            mapping = gid.mapping
            out = (list(mapping.processes), list(mapping.machines),
                   mapping.time)
            hmpi.group_free(gid)
            hmpi.release_free()
            return out
        while True:
            gid = hmpi.group_create(None, mapper)
            if gid is None:
                return None
            if gid.is_member:
                hmpi.group_free(gid)

    res = run_hmpi(app, paper_network(), engine=engine,
                   timeof_backend=backend)
    return res.results[0]


class TestTimeofBitwise:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_served_equals_direct(self, engine, backend):
        served = Executor().execute(
            em3d_request("timeof", timeof_backend=backend))
        direct = direct_timeof(engine=engine, backend=backend)
        assert served["predicted_time"] == direct  # bitwise

    def test_iterations_scale_exactly(self):
        served = Executor().execute(em3d_request("timeof", iterations=57.0))
        assert served["predicted_time"] == direct_timeof(iterations=57.0)

    @pytest.mark.parametrize("mapper", ["greedy", "refine", "exhaustive"])
    def test_every_mapper_agrees(self, mapper):
        served = Executor().execute(em3d_request("timeof", mapper=mapper))
        assert served["predicted_time"] == direct_timeof(mapper=mapper)


class TestGroupCreateBitwise:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_served_equals_direct(self, engine, backend):
        served = Executor().execute(
            em3d_request("group_create", timeof_backend=backend))
        processes, machines, time = direct_group_create(
            engine=engine, backend=backend)
        assert served["mapping"]["processes"] == processes
        assert served["mapping"]["machines"] == machines
        assert served["mapping"]["time"] == time  # bitwise
        assert served["group_size"] == len(processes)


class TestCheckBitwise:
    def test_report_equals_direct_check_source(self):
        from repro.perfmodel import check_source
        from repro.serve.exec import stub_externals

        served = Executor().execute(
            validate_request({"op": "check", "model": EM3D_MODEL_SOURCE,
                              "net": True}))
        report = check_source(EM3D_MODEL_SOURCE, target="<request>",
                              net=True,
                              externals=stub_externals(EM3D_MODEL_SOURCE))
        assert served["report"] == report.to_dict()
        assert served["exit_code"] == report.exit_code(strict=False)


class TestCampaignCellBitwise:
    CONFIG = {
        "name": "serve_diff", "app": "timeof_em3d",
        "fixed": {"cluster": "paper", "p": 4, "total_nodes": 4000,
                  "problem_seed": 3, "k": 100, "boundary_fraction": 0.3},
        "axes": {"mapper": ["greedy", "default"]},
    }

    @pytest.mark.parametrize("cell", [0, 1])
    def test_metrics_equal_direct_run_one(self, cell):
        from repro.campaign import CampaignConfig
        from repro.campaign.runner import run_one

        served = Executor().execute(validate_request(
            {"op": "campaign_cell", "campaign": self.CONFIG, "cell": cell}))
        config = CampaignConfig(self.CONFIG)
        spec = config.expand()[cell]
        assert served["metrics"] == run_one(config, spec)
        assert served["seed"] == spec.seed


class TestServedCacheIsTransparent:
    def test_hit_and_miss_answers_are_identical(self):
        ex = Executor()
        first = ex.execute(em3d_request("timeof"))
        second = ex.execute(em3d_request("timeof", tenant="other"))
        assert first["cache"] == "miss" and second["cache"] == "hit"
        assert first["predicted_time"] == second["predicted_time"]
        # group_create shares the selection cache with timeof.
        third = ex.execute(em3d_request("group_create"))
        assert third["cache"] == "hit"
        assert third["mapping"]["time"] == first["mapping"]["time"]

    def test_resubmitted_speeds_stay_cached(self):
        ex = Executor()
        speeds = [float(s) for s in range(100, 1000, 100)]
        a = ex.execute(em3d_request("timeof", speeds=speeds))
        b = ex.execute(em3d_request("timeof", speeds=list(speeds)))
        assert (a["cache"], b["cache"]) == ("miss", "hit")
        assert a["speed_epoch"] == b["speed_epoch"]
        # Changing one estimate bumps the epoch: stale entries unreachable.
        changed = list(speeds)
        changed[3] *= 2
        c = ex.execute(em3d_request("timeof", speeds=changed))
        assert c["cache"] == "miss"
        assert c["speed_epoch"] > a["speed_epoch"]


class TestHTTPBitwise:
    def test_round_trip_over_the_wire_is_exact(self):
        from repro.hmpi import connect
        from repro.serve import ServeServer

        server = ServeServer(workers=0).start_background()
        try:
            client = connect(server.url, tenant="diff")
            served = client.timeof(EM3D_MODEL_SOURCE, params=EM3D_PARAMS,
                                   cluster="paper")
            assert isinstance(served, float)
            assert served == direct_timeof()  # survived JSON both ways
            mapping = client.group_create(EM3D_MODEL_SOURCE,
                                          params=EM3D_PARAMS,
                                          cluster="paper")
            processes, machines, time = direct_group_create()
            assert mapping == {"processes": processes,
                               "machines": machines, "time": time}
        finally:
            server.stop()
