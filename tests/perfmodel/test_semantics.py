"""Static semantic checks."""

import pytest

from repro.perfmodel.compiler import compile_model, compile_source
from repro.util.errors import PMDLSemanticError


def compiles(src, **kw):
    return compile_model(src, **kw)


class TestNameResolution:
    def test_undefined_name_in_node_rule(self):
        with pytest.raises(PMDLSemanticError, match="undefined name 'q'"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(q);};
            }
            """)

    def test_link_var_visible_in_link_rule(self):
        compiles("""
        algorithm A(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          link (L=p) { I!=L : length*(1) [L]->[I]; };
        }
        """)

    def test_link_var_not_visible_in_node(self):
        with pytest.raises(PMDLSemanticError):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(L);};
              link (L=p) { I!=L : length*(1) [L]->[I]; };
            }
            """)

    def test_scheme_locals_scoped(self):
        with pytest.raises(PMDLSemanticError, match="undefined name 'i'"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme {
                for (int i = 0; i < p; i++) 100%%[i];
                100%%[i];
              };
            }
            """)

    def test_coord_not_visible_in_scheme(self):
        with pytest.raises(PMDLSemanticError, match="undefined name 'I'"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { 100%%[I]; };
            }
            """)


class TestArityChecks:
    def test_parent_arity(self):
        with pytest.raises(PMDLSemanticError, match="parent has 2"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              parent[0, 0];
            }
            """)

    def test_action_arity(self):
        with pytest.raises(PMDLSemanticError, match="compute action has 2"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { 100%%[0, 0]; };
            }
            """)

    def test_link_side_arity(self):
        with pytest.raises(PMDLSemanticError, match="link source has 2"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              link { I>=0 : length*(1) [0,0]->[I]; };
            }
            """)


class TestDeclarations:
    def test_duplicate_parameter(self):
        with pytest.raises(PMDLSemanticError, match="duplicate parameter"):
            compiles("algorithm A(int p, int p) { coord I=p; node {I>=0: bench*(1);}; }")

    def test_coord_shadows_param(self):
        with pytest.raises(PMDLSemanticError, match="shadows"):
            compiles("algorithm A(int p) { coord p=p; node {p>=0: bench*(1);}; }")

    def test_needs_coord(self):
        with pytest.raises(PMDLSemanticError, match="at least one coord"):
            compiles("algorithm A(int p) { node {1: bench*(1);}; }")

    def test_unknown_struct_type_in_scheme(self):
        # An undeclared struct type is not recognised as a type name, so the
        # declaration fails to parse (PMDLError either way).
        from repro.util.errors import PMDLError

        with pytest.raises(PMDLError):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { Vector v; };
            }
            """)


class TestExternals:
    def test_undeclared_external_rejected(self):
        with pytest.raises(PMDLSemanticError, match="undeclared external"):
            compiles("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { Mystery(p); };
            }
            """)

    def test_declared_external_accepted(self):
        compiles("""
        algorithm A(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme { Helper(p); };
        }
        """, externals={"Helper": lambda p: None})


class TestCompileSource:
    def test_multiple_algorithms(self):
        models = compile_source("""
        algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }
        algorithm B(int q) { coord J=q; node {J>=0: bench*(2);}; }
        """)
        assert set(models) == {"A", "B"}

    def test_compile_model_needs_name_when_ambiguous(self):
        src = """
        algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }
        algorithm B(int q) { coord J=q; node {J>=0: bench*(2);}; }
        """
        with pytest.raises(PMDLSemanticError, match="pass `name`"):
            compile_model(src)
        assert compile_model(src, name="B").name == "B"

    def test_unknown_name(self):
        with pytest.raises(PMDLSemanticError):
            compile_model("algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }",
                          name="Z")

    def test_duplicate_algorithm(self):
        with pytest.raises(PMDLSemanticError, match="duplicate"):
            compile_source("""
            algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }
            algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }
            """)

    def test_no_algorithm(self):
        with pytest.raises(PMDLSemanticError, match="no algorithm"):
            compile_source("typedef struct {int x;} T;")


class TestMemberAccess:
    STRUCT = "typedef struct {int I; int J;} Proc;\n"

    def test_unknown_field_rejected(self):
        with pytest.raises(PMDLSemanticError, match="no field 'K'"):
            compile_model(self.STRUCT + """
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { Proc s; s.K = 1; 100%%[0]; };
            }
            """)

    def test_declared_field_accepted(self):
        compile_model(self.STRUCT + """
        algorithm A(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme {
            Proc s;
            par (s.I = 0; s.I < p; s.I++) 100%%[s.I];
          };
        }
        """)

    def test_member_on_scalar_rejected(self):
        with pytest.raises(PMDLSemanticError, match="non-struct"):
            compile_model("""
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { int x; x.I = 1; 100%%[0]; };
            }
            """)

    def test_field_read_in_expression_checked(self):
        with pytest.raises(PMDLSemanticError, match="no field 'Z'"):
            compile_model(self.STRUCT + """
            algorithm A(int p) {
              coord I=p;
              node {I>=0: bench*(1);};
              scheme { Proc s; 100%%[s.Z]; };
            }
            """)
