"""The HMPI runtime system.

One :class:`HMPIRuntimeState` is shared by all ranks of a run (the
algorithm-independent part of the runtime); each rank holds an
:class:`HMPI` environment (created by :func:`run_hmpi`) exposing the
paper's principal operations as methods:

===============================  =====================================
paper                            here
===============================  =====================================
``HMPI_Init / HMPI_Finalize``    ``run_hmpi`` brackets the app
``HMPI_COMM_WORLD``              ``hmpi.comm_world``
``HMPI_Is_host/Is_free/...``     ``hmpi.is_host()/is_free()/is_member``
``HMPI_Recon``                   ``hmpi.recon``
``HMPI_Timeof``                  ``hmpi.timeof``
``HMPI_Group_create``            ``hmpi.group_create``
``HMPI_Group_free``              ``hmpi.group_free``
``HMPI_Get_comm``                ``group.comm``
===============================  =====================================

(The flat C-style names are also provided, see :mod:`repro.core.api`.)

Group creation is collective over the parent (host) and all free
processes.  The host runs the selection algorithm against the network
model and distributes the chosen mapping point-to-point, so processes that
are busy in other groups are never touched — matching the paper's rule
that ``HMPI_Group_create`` "must be called by the parent and all the
processes, which are not members of any HMPI group".
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from typing import Any

from ..cluster.network import Cluster
from ..mpi.communicator import Comm
from ..mpi.group import Group
from ..mpi.launcher import MPIEnv, MPIRunResult, default_placement, run_mpi
from ..perfmodel.model import AbstractBoundModel
from ..util.errors import HMPIStateError
from .group import HMPIGroup
from .mapper import DefaultMapper, Mapper, Mapping
from .netmodel import NetworkModel

__all__ = ["HMPI", "HMPIRuntimeState", "run_hmpi", "HOST_RANK"]

#: World rank of the host process (the paper's dedicated host-processor).
HOST_RANK = 0

# Internal world-context tags (distinct from both user tags >= 0 and
# collective tags <= -1_000_000 by living in their own negative band).
_TAG_GROUP_CREATE = -2_000_000


class HMPIRuntimeState:
    """Shared, lock-protected state of one HMPI run."""

    def __init__(self, netmodel: NetworkModel, mapper: Mapper):
        self.netmodel = netmodel
        self.mapper = mapper
        self.lock = threading.RLock()
        # Free = not a member of any HMPI group.  The host is permanently
        # the parent of the world group, so it is never "free" but always
        # participates in creation.
        self.free: set[int] = set(range(netmodel.nprocs)) - {HOST_RANK}
        self.creation_counter = 0
        self.dead: set[int] = set()  # world ranks on failed machines
        # Real-time rendezvous counters for group_free (gid -> arrivals).
        self.free_rendezvous: dict[int, int] = {}
        self.free_cond = threading.Condition(self.lock)

    def participants(self) -> list[int]:
        """Host plus free processes, excluding known-dead ranks."""
        with self.lock:
            alive_free = sorted(self.free - self.dead)
        return [HOST_RANK] + alive_free


class HMPI:
    """Per-rank HMPI environment (wraps the rank's MPI environment)."""

    def __init__(self, env: MPIEnv, state: HMPIRuntimeState):
        self.env = env
        self.state = state
        self.comm_world = env.comm_world  # the paper's HMPI_COMM_WORLD

    # ------------------------------------------------------------------
    # identity predicates
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """World rank within HMPI_COMM_WORLD."""
        return self.env.rank

    @property
    def size(self) -> int:
        return self.env.size

    def is_host(self) -> bool:
        """HMPI_Is_host: whether this is the dedicated host process."""
        return self.rank == HOST_RANK

    def is_free(self) -> bool:
        """HMPI_Is_free: not a member of any HMPI group."""
        with self.state.lock:
            return self.rank in self.state.free

    def is_member(self, group: HMPIGroup) -> bool:
        """HMPI_Is_member for a created group handle."""
        return group.is_member

    # ------------------------------------------------------------------
    # computation / timing passthroughs
    # ------------------------------------------------------------------
    def compute(self, volume: float, concurrency: int | None = None) -> float:
        """Charge ``volume`` benchmark units of modelled computation.

        Pass ``concurrency=group.my_concurrency`` inside a group's
        algorithm so speed sharing matches what the selection assumed.
        """
        return self.env.compute(volume, concurrency)

    def wtime(self) -> float:
        return self.env.wtime()

    # ------------------------------------------------------------------
    # HMPI_Recon
    # ------------------------------------------------------------------
    def recon(
        self,
        benchmark: Callable[[MPIEnv], Any] | None = None,
        volume: float = 1.0,
    ) -> float:
        """Refresh the runtime's processor-speed estimates.

        Collective over HMPI_COMM_WORLD.  Every process executes the
        benchmark function (default: ``volume`` benchmark units of pure
        computation), the elapsed virtual times are allgathered, and the
        network model's speed estimates are replaced by what the benchmark
        actually observed — capturing external load, exactly as the paper
        prescribes for multi-user machines.

        Returns this process's own measured speed (benchmark units/sec).
        """
        t0 = self.env.wtime()
        if benchmark is None:
            self.env.compute(volume)
        else:
            benchmark(self.env)
        elapsed = self.env.wtime() - t0
        times = self.comm_world.allgather(elapsed)
        with self.state.lock:
            self.state.netmodel.update_speeds_from_benchmark(times, volume)
        return volume / elapsed

    # ------------------------------------------------------------------
    # HMPI_Timeof
    # ------------------------------------------------------------------
    def timeof(
        self,
        model: AbstractBoundModel,
        mapper: Mapper | None = None,
        iterations: float = 1.0,
    ) -> float:
        """Predict the execution time of ``model`` without running it.

        Local operation: runs the selection algorithm against the current
        network model and returns the predicted time of the best group,
        scaled by ``iterations`` (the model describes one scheme run; the
        paper's models describe one iteration/step sequence).
        """
        mapping = self._select(model, mapper)
        return mapping.time * iterations

    def _select(self, model: AbstractBoundModel, mapper: Mapper | None) -> Mapping:
        with self.state.lock:
            netmodel = self.state.netmodel
            use_mapper = mapper or self.state.mapper
            candidates = self.state.participants()
        fixed = {model.parent_index(): HOST_RANK}
        return use_mapper.select(model, netmodel, candidates, fixed)

    # ------------------------------------------------------------------
    # HMPI_Group_create / HMPI_Group_free
    # ------------------------------------------------------------------
    def group_create(
        self,
        model: AbstractBoundModel,
        mapper: Mapper | None = None,
    ) -> HMPIGroup:
        """Create the group predicted to execute ``model`` fastest.

        Collective over the host and all free processes.  The host solves
        the selection problem and distributes the mapping; members obtain a
        communicator whose rank order equals the model's abstract-processor
        order.
        """
        world = self.comm_world
        if self.is_host():
            with self.state.lock:
                counter = self.state.creation_counter
                self.state.creation_counter += 1
                others = [r for r in self.state.participants() if r != HOST_RANK]
            mapping = self._select(model, mapper)
            payload = (counter, mapping.processes, mapping.machines, mapping.time)
            for r in others:
                world._send_internal(payload, r, _TAG_GROUP_CREATE)
        else:
            if not self.is_free():
                raise HMPIStateError(
                    f"HMPI_Group_create called by busy non-host process "
                    f"(world rank {self.rank})"
                )
            # The payload carries the creation counter; a constant tag is
            # safe because messages between a fixed pair never overtake
            # each other, so consecutive creations match in order.
            payload, _ = world._recv_internal(HOST_RANK, _TAG_GROUP_CREATE)
            counter, processes, machines, time = payload
            mapping = Mapping(tuple(processes), tuple(machines), time)
            with self.state.lock:
                self.state.creation_counter = max(
                    self.state.creation_counter, counter + 1
                )

        # Build the member communicator deterministically.
        comm = None
        if self.rank in mapping.processes:
            ctx = world._engine.allocate_context(("hmpi-group", counter))
            comm = Comm(world._engine, Group(mapping.processes), ctx, self.rank)
            with self.state.lock:
                self.state.free.discard(self.rank)
        group = HMPIGroup(
            gid=counter,
            mapping=mapping,
            comm=comm,
            parent_world_rank=HOST_RANK,
            my_world_rank=self.rank,
        )
        return group

    def group_free(self, group: HMPIGroup) -> None:
        """Free the group (collective over its members).

        Members synchronise on the group communicator (virtual time), mark
        themselves free, and then rendezvous in real time so that when any
        member — in particular the host, which is a member of every group
        via the pinned parent — returns, the whole membership change is
        visible to a subsequent ``group_create``.
        """
        if group.is_member:
            size = group.size
            gid = group.gid
            group.comm.barrier()
            state = self.state
            with state.free_cond:
                if self.rank != HOST_RANK:
                    state.free.add(self.rank)
                state.free_rendezvous[gid] = state.free_rendezvous.get(gid, 0) + 1
                if state.free_rendezvous[gid] >= size:
                    state.free_cond.notify_all()
                else:
                    while state.free_rendezvous.get(gid, 0) < size:
                        state.free_cond.wait()
        group._mark_freed()

    # ------------------------------------------------------------------
    # fault handling hooks (FT direction named in the paper's conclusion)
    # ------------------------------------------------------------------
    def mark_dead(self, world_rank: int) -> None:
        """Exclude a rank (on a failed machine) from future selections."""
        with self.state.lock:
            self.state.dead.add(world_rank)
            self.state.free.discard(world_rank)

    def get_comm(self, group: HMPIGroup):
        """HMPI_Get_comm: the MPI communicator behind a group handle."""
        return group.comm


def run_hmpi(
    app: Callable[..., Any],
    cluster: Cluster,
    placement: Sequence[int] | None = None,
    nprocs: int | None = None,
    args: tuple = (),
    kwargs: dict | None = None,
    mapper: Mapper | None = None,
    initial_speeds: Sequence[float] | None = None,
    timeout: float | None = 120.0,
    tracer: Any = None,
) -> MPIRunResult:
    """Run ``app(hmpi, *args, **kwargs)`` SPMD with the HMPI runtime.

    This brackets the application with ``HMPI_Init``/``HMPI_Finalize``: it
    builds the shared runtime state (network model seeded with nominal
    machine speeds unless ``initial_speeds`` is given) and hands every rank
    an :class:`HMPI` environment.  ``tracer`` is forwarded to the engine
    (see :class:`repro.mpi.tracing.Tracer`).
    """
    if placement is None:
        placement = default_placement(cluster, nprocs)
    netmodel = NetworkModel(cluster, placement, initial_speeds)
    state = HMPIRuntimeState(netmodel, mapper or DefaultMapper())

    def wrapped(env: MPIEnv, *a: Any, **kw: Any) -> Any:
        return app(HMPI(env, state), *a, **kw)

    return run_mpi(
        wrapped, cluster, placement=placement,
        args=args, kwargs=kwargs, timeout=timeout, tracer=tracer,
    )
