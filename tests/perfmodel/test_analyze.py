"""The PMDL static analyzer.

Each fixture in ``fixtures/`` is a small, deliberately-defective model;
the test asserts the exact diagnostic code, severity, and line the
analyzer must produce for it.  The paper's models (EM3D, ParallelAxB) and
the Jacobi model must come out clean — no errors, no warnings.
"""

from pathlib import Path

import pytest

from repro.apps.em3d.model import EM3D_MODEL_SOURCE
from repro.apps.jacobi.model import JACOBI_MODEL_SOURCE
from repro.apps.matmul.model import MM_MODEL_SOURCE
from repro.perfmodel import check_source, compile_model, compile_source
from repro.perfmodel.diagnostics import Severity
from repro.util.errors import PMDLAnalysisError

FIXTURES = Path(__file__).parent / "fixtures"

ERROR = Severity.ERROR
WARNING = Severity.WARNING
INFO = Severity.INFO

#: fixture stem -> (code, severity, line) that MUST appear in the report.
EXPECTED = {
    "syntax_error": ("PM001", ERROR, 3),
    "struct_field": ("PM002", ERROR, 8),
    "oob_compute": ("PM010", ERROR, 5),
    "oob_transfer": ("PM011", ERROR, 6),
    "oob_transfer_unguarded": ("PM011", WARNING, 8),
    "oob_parent": ("PM012", ERROR, 4),
    "bad_extent": ("PM014", ERROR, 2),
    "self_transfer": ("PM020", ERROR, 7),
    "self_link": ("PM021", WARNING, 5),
    "dead_if": ("PM030", WARNING, 8),
    "zero_trip": ("PM031", WARNING, 7),
    "dead_rule": ("PM032", WARNING, 5),
    "nonterminating": ("PM033", ERROR, 5),
    "wrong_direction": ("PM033", ERROR, 6),
    "unused_param": ("PM040", WARNING, 1),
    "unused_coord": ("PM041", WARNING, 2),
    "unused_linkvar": ("PM042", WARNING, 4),
    "unused_scheme_var": ("PM043", INFO, 5),
    "div_zero": ("PM050", ERROR, 3),
    "recv_no_compute": ("PM060", WARNING, 11),
    "unexercised_link": ("PM061", WARNING, 5),
    "par_fanin": ("PM062", INFO, 10),
}


def _check_fixture(stem: str):
    source = (FIXTURES / f"{stem}.pmdl").read_text()
    return check_source(source, target=stem)


class TestSeededDefects:
    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_reports_expected_diagnostic(self, stem):
        code, severity, line = EXPECTED[stem]
        report = _check_fixture(stem)
        found = [(d.code, d.severity, d.line) for d in report.diagnostics]
        assert (code, severity, line) in found, (
            f"{stem}: expected {code}/{severity}/line {line}, got {found}")

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_strict_exit_gates_on_severity(self, stem):
        # --strict fails on errors and warnings; infos never gate
        _, severity, _ = EXPECTED[stem]
        expected_exit = 1 if severity >= WARNING else 0
        assert _check_fixture(stem).exit_code(strict=True) == expected_exit

    def test_all_fixtures_have_expectations(self):
        # net_* fixtures exercise the PM08x net checks (test_net.py).
        stems = {p.stem for p in FIXTURES.glob("*.pmdl")
                 if not p.stem.startswith("net_")}
        assert stems == set(EXPECTED)


class TestPaperModelsAreClean:
    @pytest.mark.parametrize("name,source", [
        ("em3d", EM3D_MODEL_SOURCE),
        ("matmul", MM_MODEL_SOURCE),
        ("jacobi", JACOBI_MODEL_SOURCE),
    ])
    def test_no_errors_or_warnings(self, name, source):
        report = check_source(source, target=name)
        assert report.errors == [], report.render()
        assert report.warnings == [], report.render()

    def test_em3d_hotspot_info_only(self):
        # the fan-in the estimator prices sequentially is noted, not flagged
        report = check_source(EM3D_MODEL_SOURCE)
        assert report.codes() == ["PM062"]


class TestIntervalPrecision:
    """The analyzer must neither miss provable defects nor cry wolf."""

    def test_guarded_transfer_stays_silent(self):
        src = """
        algorithm Guarded(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme {
            int i;
            for (i = 0; i < p; i++) {
              100%%[i];
              if (i < p - 1) 100%%[i]->[i+1];
            }
          };
        }
        """
        report = check_source(src)
        assert report.errors == [] and report.warnings == [], report.render()

    def test_symbolic_oob_proved_without_binding(self):
        src = """
        algorithm Sym(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme { 100%%[p-1]; 100%%[p]; };
        }
        """
        report = check_source(src)
        # [p-1] is fine, [p] is proven out of range with p still unbound
        assert [d.code for d in report.errors] == ["PM010"]
        assert report.errors[0].line == 5

    def test_havocked_external_result_not_flagged(self):
        src = """
        typedef struct {int I;} Proc;
        algorithm Ext(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme {
            Proc root;
            Where(p, &root);
            100%%[root.I];
          };
        }
        """
        report = check_source(src)
        assert report.errors == [], report.render()

    def test_always_true_rule_not_flagged(self):
        # the paper's idiom `I>=0:` matches every processor — deliberate
        report = check_source("""
        algorithm Idiom(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
        }
        """)
        assert "PM032" not in report.codes()

    def test_division_by_symbolic_param_not_flagged(self):
        report = check_source("""
        algorithm Div(int p, int k) {
          coord I=p;
          node {I>=0: bench*(100/k);};
        }
        """)
        assert "PM050" not in report.codes()


class TestCompilerIntegration:
    def test_error_diagnostics_abort_compilation(self):
        src = (FIXTURES / "oob_compute.pmdl").read_text()
        with pytest.raises(PMDLAnalysisError) as exc_info:
            compile_model(src)
        diags = exc_info.value.diagnostics
        assert [d.code for d in diags] == ["PM010"]

    def test_analyze_false_skips_the_analyzer(self):
        src = (FIXTURES / "oob_compute.pmdl").read_text()
        model = compile_model(src, analyze=False)
        assert model.name == "OobCompute"

    def test_warnings_attach_to_model(self):
        src = (FIXTURES / "unused_param.pmdl").read_text()
        model = compile_model(src)
        assert [d.code for d in model.diagnostics] == ["PM040"]

    def test_clean_model_has_no_diagnostics(self):
        models = compile_source("""
        algorithm Clean(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
        }
        """)
        assert models["Clean"].diagnostics == ()

    def test_analysis_error_is_semantic_error_subclass(self):
        from repro.util.errors import PMDLSemanticError
        src = (FIXTURES / "self_transfer.pmdl").read_text()
        with pytest.raises(PMDLSemanticError):
            compile_model(src)


class TestCheckSourceEdgeCases:
    def test_no_algorithm(self):
        report = check_source("typedef struct {int I;} P;")
        assert [d.code for d in report.diagnostics] == ["PM002"]

    def test_multiple_algorithms_all_checked(self):
        src = """
        algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }
        algorithm B(int p, int q) { coord I=p; node {I>=0: bench*(1);}; }
        """
        report = check_source(src)
        assert report.codes() == ["PM040"]  # B's unused q

    def test_unknown_externals_assumed_declared(self):
        report = check_source("""
        algorithm Ext(int p) {
          coord I=p;
          node {I>=0: bench*(1);};
          scheme { Helper(p); 100%%[0]; };
        }
        """)
        assert report.errors == [], report.render()
