"""Collective operations verified against reference semantics."""

import numpy as np
import pytest

from repro.mpi import MAX, MAXLOC, MIN, PROD, SUM, run_mpi
from repro.util.errors import MPICommError


@pytest.mark.parametrize("size", [1, 2, 3, 4, 7, 9])
class TestBcast:
    def test_scalar(self, size):
        from repro.cluster import homogeneous_network

        def app(env):
            return env.comm_world.bcast("payload" if env.rank == 0 else None)

        res = run_mpi(app, homogeneous_network(size))
        assert res.results == ["payload"] * size

    def test_nonzero_root(self, size):
        from repro.cluster import homogeneous_network

        root = size - 1

        def app(env):
            return env.comm_world.bcast(env.rank if env.rank == root else None,
                                        root=root)

        res = run_mpi(app, homogeneous_network(size))
        assert res.results == [root] * size


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 9])
class TestReduceAllreduce:
    def test_reduce_sum(self, size):
        from repro.cluster import homogeneous_network

        def app(env):
            return env.comm_world.reduce(env.rank + 1, SUM, root=0)

        res = run_mpi(app, homogeneous_network(size))
        assert res.results[0] == size * (size + 1) // 2
        assert all(r is None for r in res.results[1:])

    def test_allreduce_max(self, size):
        from repro.cluster import homogeneous_network

        def app(env):
            return env.comm_world.allreduce(env.rank * 2, MAX)

        res = run_mpi(app, homogeneous_network(size))
        assert res.results == [(size - 1) * 2] * size


class TestReduceOps:
    def test_prod(self, small_cluster):
        def app(env):
            return env.comm_world.allreduce(env.rank + 1, PROD)

        res = run_mpi(app, small_cluster)
        assert res.results == [24] * 4

    def test_min(self, small_cluster):
        def app(env):
            return env.comm_world.allreduce(10 - env.rank, MIN)

        res = run_mpi(app, small_cluster)
        assert res.results == [7] * 4

    def test_maxloc(self, small_cluster):
        def app(env):
            value = [5, 9, 9, 1][env.rank]
            return env.comm_world.allreduce((value, env.rank), MAXLOC)

        res = run_mpi(app, small_cluster)
        # ties broken by smaller index
        assert res.results == [(9, 1)] * 4

    def test_array_elementwise_sum(self, small_cluster):
        def app(env):
            return env.comm_world.allreduce(np.full(3, float(env.rank)), SUM)

        res = run_mpi(app, small_cluster)
        assert (res.results[0] == np.full(3, 6.0)).all()


class TestGatherScatter:
    def test_gather(self, small_cluster):
        def app(env):
            return env.comm_world.gather(env.rank ** 2, root=2)

        res = run_mpi(app, small_cluster)
        assert res.results[2] == [0, 1, 4, 9]
        assert res.results[0] is None

    def test_scatter(self, small_cluster):
        def app(env):
            data = [f"item{i}" for i in range(4)] if env.rank == 1 else None
            return env.comm_world.scatter(data, root=1)

        res = run_mpi(app, small_cluster)
        assert res.results == ["item0", "item1", "item2", "item3"]

    def test_scatter_wrong_length(self, small_cluster):
        def app(env):
            if env.rank == 0:
                with pytest.raises(MPICommError):
                    env.comm_world.scatter([1, 2], root=0)
            return True

        # Only rank 0 raises; others never enter the collective.
        run_mpi(app, small_cluster)


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 9])
    def test_allgather(self, size):
        from repro.cluster import homogeneous_network

        def app(env):
            return env.comm_world.allgather(env.rank * 10)

        res = run_mpi(app, homogeneous_network(size))
        expected = [i * 10 for i in range(size)]
        assert all(r == expected for r in res.results)

    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5])
    def test_alltoall_transpose(self, size):
        from repro.cluster import homogeneous_network

        def app(env):
            out = env.comm_world.alltoall(
                [env.rank * 100 + j for j in range(env.size)]
            )
            return out

        res = run_mpi(app, homogeneous_network(size))
        for r in range(size):
            assert res.results[r] == [src * 100 + r for src in range(size)]

    def test_alltoall_wrong_length(self, pair_cluster):
        def app(env):
            with pytest.raises(MPICommError):
                env.comm_world.alltoall([1])
            env.comm_world.barrier()
            return True

        run_mpi(app, pair_cluster)


class TestScanExscan:
    def test_inclusive_scan(self, small_cluster):
        def app(env):
            return env.comm_world.scan(env.rank + 1, SUM)

        res = run_mpi(app, small_cluster)
        assert res.results == [1, 3, 6, 10]

    def test_exclusive_scan(self, small_cluster):
        def app(env):
            return env.comm_world.exscan(env.rank + 1, SUM)

        res = run_mpi(app, small_cluster)
        assert res.results == [None, 1, 3, 6]


class TestReduceScatterBlock:
    def test_elementwise_then_scatter(self, small_cluster):
        def app(env):
            contribution = [env.rank * 10 + j for j in range(env.size)]
            return env.comm_world.reduce_scatter_block(contribution, SUM)

        res = run_mpi(app, small_cluster)
        # element j summed over ranks: sum_r (r*10 + j) = 60 + 4j
        assert res.results == [60, 64, 68, 72]


class TestBarrier:
    def test_barrier_synchronises_clocks(self, small_cluster):
        def app(env):
            env.compute(float(env.rank * 100))  # very uneven work
            env.comm_world.barrier()
            return env.wtime()

        res = run_mpi(app, small_cluster)
        # Slowest pre-barrier worker: rank 2 computes 200 units at speed 25
        # -> 8 s.  After the barrier nobody's clock is earlier than that.
        assert min(res.results) >= 8.0
        assert max(res.results) < 8.1  # barrier latency is small

    def test_consecutive_collectives_do_not_cross_match(self, small_cluster):
        def app(env):
            c = env.comm_world
            a = c.allgather(("first", env.rank))
            b = c.allgather(("second", env.rank))
            return (a[0][0], b[0][0])

        res = run_mpi(app, small_cluster)
        assert all(r == ("first", "second") for r in res.results)
