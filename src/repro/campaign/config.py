"""Declarative campaign configs: validation, expansion, seed derivation.

A campaign is a JSON document (or plain dict)::

    {
      "name": "mapper_ablation",
      "app": "timeof_em3d",
      "seed": 20030422,
      "fixed": {"cluster": "paper", "p": 7},
      "axes": {"mapper": ["greedy", "refine", "default", "exhaustive"]}
    }

``app`` names a driver from :data:`repro.campaign.drivers.DRIVERS`;
``fixed`` holds parameters shared by every run; ``axes`` maps parameter
names to value lists, expanded as a cartesian product into one
:class:`RunSpec` per cell.  Every parameter name is validated against
the driver's declared surface, so a typo fails at load (exit code 2
from the CLI), not mid-sweep.

**Seed derivation.**  Each run gets its own seed via
:func:`repro.util.rng.spawn_rng` from a *fresh* parent stream seeded
with the campaign seed, keyed by a digest of the run's *scenario*
parameters (canonical JSON, sorted keys).  Two consequences, both
asserted by the property tests:

- Permuting the order of axes (or moving a parameter between ``fixed``
  and an axis) never changes any run's seed — the key depends only on
  the merged parameter values, and the parent stream is re-created per
  run so no draw-order dependence leaks in.
- Execution-only parameters (:data:`EXECUTION_AXES`: the simulation
  ``engine`` and the ``timeof_backend``) are excluded from the key, so
  an ``engine`` axis sweeps *the same* seeded scenarios under both
  engines and their rows can be compared bitwise.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass

from ..util.errors import CampaignError
from ..util.rng import DEFAULT_SEED, make_rng, spawn_rng
from .drivers import Driver, resolve_driver
from .results import canonical_json

__all__ = [
    "CampaignConfig",
    "RunSpec",
    "EXECUTION_AXES",
    "derive_seed",
    "load_config",
]

#: Parameters that choose *how* a scenario is simulated, not *what*
#: happens in it; excluded from seed derivation (see module docstring).
EXECUTION_AXES = frozenset({"engine", "timeof_backend"})

_TOP_LEVEL_KEYS = frozenset({"name", "app", "seed", "fixed", "axes"})


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved campaign cell, ready to execute.

    ``cell`` holds only the axis coordinates (what varies — recorded in
    the result row and matched against baselines); ``params`` is the
    complete driver parameter dict (fixed + cell); ``seed`` is the
    derived per-run seed.
    """

    index: int
    cell: dict
    params: dict
    seed: int


def derive_seed(campaign_seed: int, scenario: dict) -> int:
    """The per-run seed for a merged scenario-parameter dict."""
    digest = hashlib.sha256(canonical_json(scenario).encode()).digest()
    key = int.from_bytes(digest[:8], "big") % 2**63
    return int(spawn_rng(make_rng(campaign_seed), key).integers(0, 2**63 - 1))


class CampaignConfig:
    """A validated campaign specification."""

    def __init__(self, raw: dict):
        if not isinstance(raw, dict):
            raise CampaignError(
                f"campaign config must be a JSON object, got {type(raw).__name__}")
        unknown = set(raw) - _TOP_LEVEL_KEYS
        if unknown:
            raise CampaignError(
                f"unknown campaign key(s) {', '.join(sorted(unknown))}; "
                f"expected {', '.join(sorted(_TOP_LEVEL_KEYS))}"
            )
        name = raw.get("name")
        if not isinstance(name, str) or not name:
            raise CampaignError("campaign needs a non-empty string 'name'")
        self.name = name
        self.driver: Driver = resolve_driver(raw.get("app"))
        seed = raw.get("seed", DEFAULT_SEED)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise CampaignError(f"campaign seed must be an integer, got {seed!r}")
        self.seed = seed

        fixed = raw.get("fixed", {})
        axes = raw.get("axes", {})
        if not isinstance(fixed, dict):
            raise CampaignError(f"'fixed' must be an object, got {fixed!r}")
        if not isinstance(axes, dict) or not axes:
            raise CampaignError("'axes' must be a non-empty object")
        for axis, values in axes.items():
            if not isinstance(values, list) or not values:
                raise CampaignError(
                    f"axis {axis!r} must map to a non-empty list, got {values!r}")
        overlap = set(fixed) & set(axes)
        if overlap:
            raise CampaignError(
                f"parameter(s) {', '.join(sorted(overlap))} appear in both "
                f"'fixed' and 'axes'"
            )
        for param in list(fixed) + list(axes):
            if param not in self.driver.params:
                raise CampaignError(
                    f"driver {self.driver.name!r} has no parameter {param!r}; "
                    f"expected one of {', '.join(self.driver.params)}"
                )
        self.fixed = dict(fixed)
        self.axes = dict(axes)
        self.raw = raw

    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def expand(self) -> list[RunSpec]:
        """The cartesian expansion: one :class:`RunSpec` per cell.

        Cells enumerate with axes sorted by name and values in declared
        order, so the run order — like the seeds — is independent of the
        key order the config file happens to use.
        """
        names = sorted(self.axes)
        specs = []
        for index, combo in enumerate(
                itertools.product(*(self.axes[a] for a in names))):
            cell = dict(zip(names, combo))
            params = {**self.fixed, **cell}
            scenario = {k: v for k, v in params.items()
                        if k not in EXECUTION_AXES}
            specs.append(RunSpec(
                index=index, cell=cell, params=params,
                seed=derive_seed(self.seed, scenario),
            ))
        return specs

    def to_dict(self) -> dict:
        """Canonical dict form (used for the summary's config digest)."""
        return {
            "name": self.name,
            "app": self.driver.name,
            "seed": self.seed,
            "fixed": self.fixed,
            "axes": self.axes,
        }


def load_config(path: "str | pathlib.Path") -> CampaignConfig:
    """Read and validate a campaign JSON file."""
    p = pathlib.Path(path)
    if not p.exists():
        raise CampaignError(f"no campaign file at {p}")
    try:
        raw = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise CampaignError(f"{p}: not valid JSON: {exc}") from exc
    return CampaignConfig(raw)
