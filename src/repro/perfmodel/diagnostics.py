"""Coded diagnostics for PMDL tooling.

Every defect the static analyzer (:mod:`repro.perfmodel.analyze`) or the
consistency linter (:mod:`repro.perfmodel.lint`) can report is identified by
a stable ``PM0xx`` rule code, so tests, editors and CI can match on codes
rather than message text.  A :class:`Diagnostic` is one finding (code,
severity, source line, message); a :class:`DiagnosticReport` is the ordered
collection for one compilation unit, with human-readable rendering,
machine-readable JSON, and severity gating for CLI exit codes.

The rule catalogue is documented with triggering examples in
``docs/DIAGNOSTICS.md``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from . import ast

__all__ = [
    "Severity",
    "Rule",
    "Diagnostic",
    "DiagnosticReport",
    "RULES",
    "register_rule",
    "rule",
]


class Severity(enum.IntEnum):
    """Ordered severities; larger is worse (so ``max()`` gives the gate)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Rule:
    """A registered diagnostic rule with a stable code.

    ``severity`` is the default; individual diagnostics may override it
    (e.g. an out-of-range coordinate is an *error* when proven for every
    execution but a *warning* when only some values can escape the range).
    """

    code: str
    slug: str
    severity: Severity
    summary: str

    def at(
        self,
        where: ast.Node | int,
        message: str,
        severity: Severity | None = None,
        hint: str | None = None,
    ) -> "Diagnostic":
        """Build a diagnostic of this rule at an AST node (or raw line)."""
        line = where.line if isinstance(where, ast.Node) else int(where)
        return Diagnostic(
            code=self.code,
            severity=self.severity if severity is None else severity,
            line=line,
            message=message,
            rule=self.slug,
            hint=hint,
        )


#: The global rule registry, keyed by code (filled by analyze.py / lint.py).
RULES: dict[str, Rule] = {}


def register_rule(code: str, slug: str, severity: Severity, summary: str) -> Rule:
    """Register a rule code; codes are unique across the whole toolchain."""
    if code in RULES:
        raise ValueError(f"duplicate diagnostic rule code {code!r}")
    r = Rule(code, slug, severity, summary)
    RULES[code] = r
    return r


def rule(code: str) -> Rule:
    """Look up a registered rule by its ``PM0xx`` code."""
    return RULES[code]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, source line, and message."""

    code: str
    severity: Severity
    line: int
    message: str
    rule: str = ""
    hint: str | None = None

    def render(self) -> str:
        text = f"line {self.line}: {self.severity} {self.code}: {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_dict(self) -> dict:
        out = {
            "code": self.code,
            "severity": str(self.severity),
            "line": self.line,
            "message": self.message,
            "rule": self.rule,
        }
        if self.hint is not None:
            out["hint"] = self.hint
        return out


@dataclass
class DiagnosticReport:
    """All diagnostics for one compilation unit (file or source string)."""

    target: str = "<source>"
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags) -> None:
        self.diagnostics.extend(diags)

    def sort(self) -> None:
        self.diagnostics.sort(key=lambda d: (d.line, d.code, d.message))

    # ------------------------------------------------------------------
    # severity views
    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when nothing error-level was found."""
        return not self.errors

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def exit_code(self, strict: bool = False) -> int:
        """CLI gate: 1 on errors; under ``--strict`` also on warnings."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
                f"{len(self.infos)} info(s)")

    def render(self) -> str:
        lines = [f"{self.target}: {self.summary()}"]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return self.render()
