"""Application drivers a campaign can sweep.

A driver is a named function ``fn(params, rng) -> metrics`` running one
campaign cell: it builds the scenario (cluster, faults, loads, churn)
from the cell's parameters, executes the application through the
library's public entry points, and returns a flat dict of deterministic
metrics (virtual times, counts, selections — never wall-clock), so
result rows are bitwise reproducible from the config and seed.

Three drivers ship:

``timeof_em3d``
    Selection-only: runs each mapper on the paper's EM3D instance and
    reports the predicted execution time of the chosen group — the
    campaign port of ``benchmarks/bench_ablation_mapper.py`` (identical
    numbers under identical parameters).

``jacobi_ft``
    The fault-tolerant Jacobi solver through machine deaths and
    transient link faults — the campaign port of the ``tests/ft`` sweep,
    including the bitwise-vs-reference differential check.

``iterative``
    The dynamic-world driver: a chunked iterative computation on an
    HMPI group while machines churn (administrative leave/join at
    virtual times), external load varies, and the **re-selection
    policy** axis decides when the group is re-formed — ``"never"``
    (initial selection runs to completion), ``"on-failure"`` (repair
    after typed failures only), or ``"periodic"`` (re-select at every
    chunk boundary, picking up churn and load changes).

``em3d_recon``
    End-to-end recon ablation: runs the same EM3D instance as the MPI
    baseline and as HMPI with ``recon`` on or off (the natural axis)
    under per-machine external load — the campaign port of
    ``benchmarks/bench_ablation_recon.py``.  Both variants of a cell
    see the *identical* scenario: the per-run rng contributes one
    scenario seed, re-expanded per variant.

``groupsize_amdahl``
    Automatic group sizing on an Amdahl-style workload (divisible work
    plus a serial per-member combine at the root) — the campaign port of
    ``benchmarks/bench_ablation_groupsize.py``.  Sweeping the
    ``combine_cost`` axis shows the tuned group shrinking as the serial
    fraction grows; the cell also executes the tuned group and reports
    the measured virtual time against the prediction.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..apps.em3d import (
    bind_em3d_model,
    generate_problem,
    run_em3d_hmpi,
    run_em3d_mpi,
)
from ..apps.jacobi import jacobi_reference, run_jacobi_ft
from ..apps.jacobi.model import bind_jacobi_model
from ..apps.jacobi.solver import partition_rows
from ..core.autotune import auto_create, tune_group_size
from ..core.mapper import resolve_mapper
from ..core.netmodel import NetworkModel
from ..core.runtime import HMPI, run_hmpi
from ..perfmodel import CallableModel
from ..mpi.ops import SUM
from ..mpi.scheduler import resolve_ft
from ..util.errors import (
    CampaignError,
    HMPIRepairError,
    HMPIStateError,
    MappingError,
    OperationTimeoutError,
    RankFailedError,
)
from ..util.options import check_choice
from .scenarios import apply_scenario, build_cluster, normalize_churn

__all__ = ["DRIVERS", "Driver", "resolve_driver", "RESELECTION_POLICIES"]

#: The pluggable re-selection policy axis of the ``iterative`` driver.
RESELECTION_POLICIES = ("never", "on-failure", "periodic")


@dataclass(frozen=True)
class Driver:
    """A named campaign driver with its declared parameter surface."""

    name: str
    fn: Callable[[dict, np.random.Generator], dict]
    params: tuple[str, ...]
    defaults: dict

    def run(self, params: dict, rng: np.random.Generator) -> dict:
        merged = {**self.defaults, **params}
        return self.fn(merged, rng)


# ----------------------------------------------------------------------
# timeof_em3d — selection-only mapper ablation (mirrors the bench)
# ----------------------------------------------------------------------

def _timeof_em3d(params: dict, rng: np.random.Generator) -> dict:
    problem = generate_problem(
        p=int(params["p"]),
        total_nodes=int(params["total_nodes"]),
        seed=int(params["problem_seed"]),
        boundary_fraction=float(params["boundary_fraction"]),
    )
    model = bind_em3d_model(problem, int(params["k"]))
    cluster = build_cluster(params["cluster"])
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    mapper = resolve_mapper(params["mapper"])
    candidates = list(range(cluster.size))
    fixed = {model.parent_index(): 0}
    mapping = mapper.select(model, netmodel, candidates, fixed)
    return {
        "predicted_time": float(mapping.time),
        "processes": [int(x) for x in mapping.processes],
    }


# ----------------------------------------------------------------------
# jacobi_ft — fault-injection sweep (mirrors tests/ft)
# ----------------------------------------------------------------------

def _jacobi_ft(params: dict, rng: np.random.Generator) -> dict:
    n = int(params["n"])
    niter = int(params["niter"])
    grid_seed = int(params["grid_seed"])
    cluster = build_cluster(params["cluster"])
    apply_scenario(
        cluster, rng,
        deaths=params["deaths"], transient=params["transient"],
        loads=params["loads"],
    )
    res = run_jacobi_ft(
        cluster,
        n=n,
        p=int(params["p"]) if params["p"] else cluster.size,
        niter=niter,
        k=int(params["k"]),
        seed=grid_seed,
        checkpoint_every=int(params["checkpoint_every"]),
        mapper=params["mapper"],
        ft=resolve_ft(params["ft"]) if params["ft"] else None,
        max_repairs=int(params["max_repairs"]),
        timeout=params["timeout"],
        engine=params["engine"],
        timeof_backend=params["timeof_backend"],
    )
    recovered = res.grid is not None
    bitwise_ok = (
        bool(np.array_equal(res.grid, jacobi_reference(n, niter, grid_seed)))
        if recovered else None
    )
    return {
        "makespan": float(res.makespan),
        "recovered": recovered,
        "bitwise_ok": bitwise_ok,
        "repairs": int(res.repairs),
        "dead_ranks": [int(r) for r in res.dead_ranks],
        "checkpoint_saves": int(res.checkpoint_saves),
        "checkpoint_restores": int(res.checkpoint_restores),
        "error": res.error,
    }


# ----------------------------------------------------------------------
# iterative — the dynamic-world driver (churn + load + re-selection)
# ----------------------------------------------------------------------

def _iterative(params: dict, rng: np.random.Generator) -> dict:
    policy = check_choice("re-selection policy", params["policy"],
                          RESELECTION_POLICIES, CampaignError)
    n = int(params["n"])
    p = int(params["p"])
    k = int(params["k"])
    niter = int(params["niter"])
    chunk = int(params["chunk"])
    max_repairs = int(params["max_repairs"])
    mapper = params["mapper"]
    if chunk < 1:
        raise CampaignError(f"chunk must be >= 1, got {chunk}")
    cluster = build_cluster(params["cluster"])
    apply_scenario(
        cluster, rng,
        deaths=params["deaths"], transient=params["transient"],
        loads=params["loads"],
    )
    events = normalize_churn(params["churn"], cluster.size)
    # Machines whose load model the host refreshes into the speed
    # estimates at chunk boundaries (omniscient recon: speed x share).
    load_machines = sorted(int(m) for m in (params["loads"] or {}))
    if p > cluster.size:
        raise CampaignError(
            f"need p={p} machines, cluster has {cluster.size}")

    def model_for(navail: int):
        size = max(2, min(p, navail))
        return bind_jacobi_model(size, k, n, partition_rows(n, [1.0] * size))

    def app(hmpi: HMPI):
        done = 0
        reselections = 0
        repairs = 0
        applied = 0
        skipped = 0
        gid = None

        def refresh() -> None:
            # Host-only: apply churn events that are due and fold current
            # load shares into the speed estimates, so the next selection
            # sees the world as it is now.
            nonlocal applied, skipped
            now = hmpi.wtime()
            while applied + skipped < len(events):
                ev = events[applied + skipped]
                if ev.t > now:
                    break
                try:
                    if ev.op == "leave":
                        hmpi.depart_machine(ev.machine)
                    else:
                        hmpi.admit_machine(ev.machine)
                    applied += 1
                except HMPIStateError:
                    # e.g. joining a machine that has since died: the
                    # event is impossible now; skip it, typed and counted.
                    skipped += 1
            if load_machines:
                with hmpi.state.lock:
                    netmodel = hmpi.state.netmodel
                    for m in load_machines:
                        machine = cluster.machines[m]
                        share = machine.load.share_at(now)
                        netmodel.update_speed(m, machine.speed * share)

        def finish(outcome: str, final, error) -> dict:
            if hmpi.is_host():
                try:
                    hmpi.release_free()
                except Exception:
                    pass
            return {
                "outcome": outcome, "iterations": done,
                "reselections": reselections, "repairs": repairs,
                "churn_applied": applied, "churn_skipped": skipped,
                "final_group": final, "error": error,
            }

        try:
            while True:
                if gid is None:
                    if hmpi.is_host():
                        refresh()
                    created = hmpi.group_create(
                        model_for if hmpi.is_host() else None, mapper,
                    )
                    if created is None:
                        return {"outcome": "released"}
                    gid = created if created.is_member else None
                    continue
                comm = gid.comm
                me = comm.rank
                header = (done, min(chunk, niter - done)) if me == 0 else None
                done, todo = comm.bcast(header, root=0)
                try:
                    rows = partition_rows(n, [1.0] * gid.size)
                    conc = gid.my_concurrency
                    for _ in range(todo):
                        hmpi.compute(rows[me] * n / k, conc)
                        comm.allreduce(1, SUM)
                    done += todo
                except (RankFailedError, OperationTimeoutError) as exc:
                    if policy != "on-failure":
                        return finish(
                            "failed", None,
                            f"{type(exc).__name__}: {exc}",
                        )
                    repairs += 1
                    if repairs > max_repairs:
                        raise HMPIRepairError(
                            f"gave up after {max_repairs} repairs"
                        ) from exc
                    gid = hmpi.group_repair(
                        gid, model_for,
                        dead=tuple(getattr(exc, "ranks", ())),
                    )
                    if not gid.is_member:
                        gid = None
                    continue
                if done >= niter:
                    final = ([int(r) for r in gid.world_ranks]
                             if hmpi.is_host() else None)
                    return finish("done", final, None)
                if hmpi.is_host():
                    refresh()
                if policy == "periodic":
                    hmpi.group_free(gid)
                    gid = None
                    reselections += 1
        except (HMPIRepairError, MappingError) as exc:
            return finish("failed", None, str(exc))

    result = run_hmpi(
        app, cluster, timeout=params["timeout"],
        ft=resolve_ft(params["ft"]) if params["ft"] else None,
        engine=params["engine"], timeof_backend=params["timeof_backend"],
    )
    host = result.results[0]
    if not isinstance(host, dict) or "iterations" not in host:
        exc = result.exception_of(0)
        reason = (f"host died: {type(exc).__name__}" if exc is not None
                  else f"host outcome: {host!r}")
        return {
            "makespan": float(result.makespan), "outcome": "failed",
            "iterations": 0, "reselections": 0, "repairs": 0,
            "churn_applied": 0, "churn_skipped": 0, "final_group": None,
            "error": reason,
        }
    return {"makespan": float(result.makespan), **host}


# ----------------------------------------------------------------------
# em3d_recon — end-to-end recon ablation (mirrors bench_ablation_recon)
# ----------------------------------------------------------------------

def _em3d_recon(params: dict, rng: np.random.Generator) -> dict:
    problem = generate_problem(
        p=int(params["p"]),
        total_nodes=int(params["total_nodes"]),
        seed=int(params["problem_seed"]),
        boundary_fraction=float(params["boundary_fraction"]),
    )
    niter = int(params["niter"])
    k = int(params["k"])
    # One scenario seed per cell, re-expanded for each variant: the MPI
    # baseline and the HMPI run face bit-identical load models even when
    # the load spec is stochastic.
    scenario_seed = int(rng.integers(0, 2**63 - 1))

    def world():
        cluster = build_cluster(params["cluster"])
        apply_scenario(
            cluster, np.random.default_rng(scenario_seed),
            deaths=params["deaths"], transient=params["transient"],
            loads=params["loads"],
        )
        return cluster

    mpi = run_em3d_mpi(world(), problem, niter=niter, k=k,
                       timeout=params["timeout"], engine=params["engine"])
    hmpi = run_em3d_hmpi(
        world(), problem, niter=niter, k=k,
        mapper=params["mapper"], recon=bool(params["recon"]),
        procs_per_machine=int(params["procs_per_machine"]),
        timeout=params["timeout"], engine=params["engine"],
    )
    return {
        "mpi_time": float(mpi.algorithm_time),
        "hmpi_time": float(hmpi.algorithm_time),
        "predicted_time": float(hmpi.predicted_time),
        "speedup": float(mpi.algorithm_time / hmpi.algorithm_time),
        "checksum_ok": bool(mpi.checksum == hmpi.checksum),
        "group_machines": [int(m) for m in hmpi.group_machines],
    }


# ----------------------------------------------------------------------
# groupsize_amdahl — automatic group sizing (mirrors bench_ablation_groupsize)
# ----------------------------------------------------------------------

def _amdahl_family(total_work: float, partial_bytes: float,
                   combine_cost: float):
    def family(p):
        def node_volume(i):
            base = total_work / p
            return base + (combine_cost * (p - 1) if i == 0 else 0.0)

        return CallableModel(
            p,
            node_volume=node_volume,
            link_volume=lambda s, d: partial_bytes if d == 0 else 0.0,
            name=f"amdahl-{p}",
        )

    return family


def _groupsize_amdahl(params: dict, rng: np.random.Generator) -> dict:
    total_work = float(params["total_work"])
    partial_bytes = float(params["partial_bytes"])
    combine_cost = float(params["combine_cost"])
    mapper = params["mapper"]
    cluster = build_cluster(params["cluster"])
    apply_scenario(
        cluster, rng,
        deaths=params["deaths"], transient=params["transient"],
        loads=params["loads"],
    )
    max_p = int(params["max_p"]) or cluster.size
    if max_p < 1 or max_p > cluster.size:
        raise CampaignError(
            f"max_p must be in [1, {cluster.size}], got {max_p}")
    sizes = range(1, max_p + 1)
    family = _amdahl_family(total_work, partial_bytes, combine_cost)

    def app(hmpi: HMPI):
        if hmpi.is_host():
            sweep = tune_group_size(hmpi, family, sizes, mapper)
            info = (sweep.best_p, sweep.best_time,
                    sweep.predictions.get(max_p))
        else:
            info = None
        best_p, best_time, all_machines = hmpi.comm_world.bcast(info, root=0)

        gid, chosen = auto_create(hmpi, family, sizes, mapper)
        measured = None
        if gid.is_member:
            comm = gid.comm
            conc = gid.my_concurrency
            comm.barrier()
            t0 = comm.wtime()
            # the modelled pattern: partials to the root, root combines
            if comm.rank != 0:
                comm.send(b"", 0, tag=0, nbytes=int(partial_bytes))
            hmpi.compute(total_work / chosen, conc)
            if comm.rank == 0:
                for s in range(1, comm.size):
                    comm.recv(s, tag=0)
                hmpi.compute(combine_cost * (chosen - 1), conc)
            comm.barrier()
            measured = comm.wtime() - t0
            hmpi.group_free(gid)
        return best_p, best_time, all_machines, measured

    res = run_hmpi(
        app, cluster, timeout=params["timeout"],
        engine=params["engine"], timeof_backend=params["timeof_backend"],
    )
    best_p, best_time, all_machines, _ = res.results[0]
    measured = max(m for *_, m in res.results if m is not None)
    return {
        "tuned_p": int(best_p),
        "predicted_time": float(best_time),
        "all_machines_time": float(all_machines),
        "measured_time": float(measured),
        "makespan": float(res.makespan),
    }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_SCENARIO_DEFAULTS = {
    "cluster": "paper",
    "deaths": None,
    "transient": None,
    "loads": None,
}

_EXEC_DEFAULTS = {
    "engine": None,
    "timeof_backend": None,
    "ft": None,
    "timeout": 120.0,
}

DRIVERS: dict[str, Driver] = {
    "timeof_em3d": Driver(
        name="timeof_em3d",
        fn=_timeof_em3d,
        params=("cluster", "mapper", "p", "total_nodes", "problem_seed",
                "k", "boundary_fraction"),
        defaults={
            "cluster": "paper", "mapper": "default", "p": 7,
            "total_nodes": 21_000, "problem_seed": 5, "k": 100,
            "boundary_fraction": 0.3,
        },
    ),
    "jacobi_ft": Driver(
        name="jacobi_ft",
        fn=_jacobi_ft,
        params=("cluster", "n", "p", "niter", "k", "grid_seed",
                "checkpoint_every", "mapper", "ft", "max_repairs",
                "timeout", "engine", "timeof_backend", "deaths",
                "transient", "loads"),
        defaults={
            **_SCENARIO_DEFAULTS, **_EXEC_DEFAULTS,
            "cluster": {"kind": "uniform", "speeds": [100.0] * 4},
            "n": 18, "p": 0, "niter": 12, "k": 100, "grid_seed": 0,
            "checkpoint_every": 2, "mapper": None, "max_repairs": 8,
            "timeout": 60.0,
        },
    ),
    "iterative": Driver(
        name="iterative",
        fn=_iterative,
        params=("cluster", "n", "p", "niter", "k", "chunk", "policy",
                "mapper", "ft", "max_repairs", "timeout", "engine",
                "timeof_backend", "deaths", "transient", "loads", "churn"),
        defaults={
            **_SCENARIO_DEFAULTS, **_EXEC_DEFAULTS,
            "cluster": {"kind": "uniform", "speeds": [100.0] * 4},
            "n": 24, "p": 4, "niter": 24, "k": 100, "chunk": 4,
            "policy": "never", "mapper": None, "max_repairs": 8,
            "timeout": 60.0, "churn": None,
        },
    ),
    "groupsize_amdahl": Driver(
        name="groupsize_amdahl",
        fn=_groupsize_amdahl,
        params=("cluster", "combine_cost", "total_work", "partial_bytes",
                "max_p", "mapper", "timeout", "engine", "timeof_backend",
                "deaths", "transient", "loads"),
        defaults={
            **_SCENARIO_DEFAULTS, **_EXEC_DEFAULTS,
            "combine_cost": 0.0, "total_work": 900.0,
            "partial_bytes": 64 * 1024, "max_p": 0, "mapper": None,
            "timeout": 60.0,
        },
    ),
    "em3d_recon": Driver(
        name="em3d_recon",
        fn=_em3d_recon,
        params=("cluster", "p", "total_nodes", "problem_seed",
                "boundary_fraction", "k", "niter", "recon",
                "procs_per_machine", "mapper", "timeout", "engine",
                "deaths", "transient", "loads"),
        defaults={
            **_SCENARIO_DEFAULTS, **_EXEC_DEFAULTS,
            "p": 9, "total_nodes": 18_000, "problem_seed": 8,
            "boundary_fraction": 0.3, "k": 100, "niter": 6,
            "recon": True, "procs_per_machine": 2, "mapper": None,
        },
    ),
}


def resolve_driver(name) -> Driver:
    """Look up a campaign driver by name (CampaignError on unknown)."""
    if isinstance(name, Driver):
        return name
    check_choice("campaign driver", name, tuple(DRIVERS), CampaignError)
    return DRIVERS[name]
