"""MPI group algebra — the constructors HMPI deliberately omits but the
substrate provides via HMPI_Get_comm."""

import pytest

from repro.mpi.group import GROUP_EMPTY, IDENT, SIMILAR, UNEQUAL, Group
from repro.mpi.status import UNDEFINED
from repro.util.errors import MPIGroupError


class TestConstruction:
    def test_empty(self):
        assert GROUP_EMPTY.size == 0

    def test_duplicates_rejected(self):
        with pytest.raises(MPIGroupError):
            Group([1, 1])

    def test_negative_rejected(self):
        with pytest.raises(MPIGroupError):
            Group([-1])


class TestAccessors:
    def test_size_and_iteration(self):
        g = Group([5, 3, 7])
        assert g.size == 3
        assert list(g) == [5, 3, 7]

    def test_rank_of(self):
        g = Group([5, 3, 7])
        assert g.rank_of(3) == 1
        assert g.rank_of(99) == UNDEFINED

    def test_world_rank(self):
        g = Group([5, 3, 7])
        assert g.world_rank(2) == 7
        with pytest.raises(MPIGroupError):
            g.world_rank(3)

    def test_contains(self):
        g = Group([5, 3])
        assert 5 in g and 4 not in g

    def test_translate_ranks(self):
        g1 = Group([10, 11, 12])
        g2 = Group([12, 10])
        assert g1.translate_ranks([0, 1, 2], g2) == [1, UNDEFINED, 0]

    def test_compare(self):
        a = Group([1, 2, 3])
        assert a.compare(Group([1, 2, 3])) == IDENT
        assert a.compare(Group([3, 2, 1])) == SIMILAR
        assert a.compare(Group([1, 2])) == UNEQUAL


class TestSetOperations:
    def test_union_preserves_first_order(self):
        a = Group([1, 3, 5])
        b = Group([5, 4, 1, 2])
        assert Group([1, 3, 5, 4, 2]) == a.union(b)

    def test_intersection_order_of_first(self):
        a = Group([5, 3, 1])
        b = Group([1, 2, 3])
        assert a.intersection(b) == Group([3, 1])

    def test_difference(self):
        a = Group([5, 3, 1])
        b = Group([3])
        assert a.difference(b) == Group([5, 1])

    def test_union_with_empty(self):
        a = Group([1, 2])
        assert a.union(GROUP_EMPTY) == a
        assert GROUP_EMPTY.union(a) == a

    def test_difference_with_self_is_empty(self):
        a = Group([1, 2])
        assert a.difference(a) == GROUP_EMPTY


class TestInclExcl:
    def test_incl_reorders(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]) == Group([30, 10])

    def test_incl_bad_rank(self):
        with pytest.raises(MPIGroupError):
            Group([10]).incl([3])

    def test_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.excl([1, 3]) == Group([10, 30])

    def test_excl_validates(self):
        with pytest.raises(MPIGroupError):
            Group([10]).excl([5])


class TestRangeOperations:
    def test_range_incl(self):
        g = Group(list(range(100, 110)))
        # (first, last, stride)
        assert g.range_incl([(0, 6, 2)]) == Group([100, 102, 104, 106])

    def test_range_incl_negative_stride(self):
        g = Group(list(range(100, 105)))
        assert g.range_incl([(4, 0, -2)]) == Group([104, 102, 100])

    def test_range_excl(self):
        g = Group(list(range(100, 106)))
        assert g.range_excl([(0, 5, 2)]) == Group([101, 103, 105])

    def test_zero_stride_rejected(self):
        with pytest.raises(MPIGroupError):
            Group([1, 2]).range_incl([(0, 1, 0)])

    def test_multiple_ranges(self):
        g = Group(list(range(10)))
        assert g.range_incl([(0, 1, 1), (8, 9, 1)]) == Group([0, 1, 8, 9])


class TestHashEq:
    def test_equal_groups_hash_equal(self):
        assert hash(Group([1, 2])) == hash(Group([1, 2]))

    def test_order_matters_for_eq(self):
        assert Group([1, 2]) != Group([2, 1])
