"""PMDL source regeneration (pretty-printer).

Turns an AST back into compilable PMDL source.  Used for tooling (show the
user the model the runtime actually compiled), debugging, and — most
importantly — the round-trip property tests: ``parse(print(parse(src)))``
must produce an equivalent AST for every model, which pins down both the
parser and this printer.

Output is canonical rather than byte-identical to the input: fixed
indentation, fully parenthesised binary expressions (so precedence never
needs re-deriving), one statement per line.
"""

from __future__ import annotations

from ..util.errors import PMDLError
from . import ast

__all__ = ["format_algorithm", "format_struct", "format_expression",
           "format_coords", "format_unit"]

_INDENT = "  "


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------

def format_expression(e: ast.Expr) -> str:
    if isinstance(e, ast.IntLit):
        return str(e.value)
    if isinstance(e, ast.FloatLit):
        return repr(e.value)
    if isinstance(e, ast.Name):
        return e.ident
    if isinstance(e, ast.Index):
        return f"{format_expression(e.base)}[{format_expression(e.index)}]"
    if isinstance(e, ast.Member):
        return f"{format_expression(e.base)}.{e.name}"
    if isinstance(e, ast.Unary):
        return f"{e.op}({format_expression(e.operand)})"
    if isinstance(e, ast.AddrOf):
        return f"&{format_expression(e.operand)}"
    if isinstance(e, ast.Binary):
        return (f"({format_expression(e.left)} {e.op} "
                f"{format_expression(e.right)})")
    if isinstance(e, ast.Conditional):
        return (f"({format_expression(e.cond)} ? {format_expression(e.then)}"
                f" : {format_expression(e.otherwise)})")
    if isinstance(e, ast.Assign):
        return f"{format_expression(e.target)} {e.op} {format_expression(e.value)}"
    if isinstance(e, ast.IncDec):
        return f"{format_expression(e.target)}{e.op}"
    if isinstance(e, ast.Call):
        args = ", ".join(format_expression(a) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, ast.Sizeof):
        return f"sizeof({e.type_name})"
    raise PMDLError(f"cannot print expression {type(e).__name__}")


def format_coords(coords: list[ast.Expr]) -> str:
    """Render a coordinate tuple as it appears in source: ``[I, J]``."""
    return "[" + ", ".join(format_expression(c) for c in coords) + "]"


# internal alias kept for the statement printers below
_coords = format_coords


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

def _format_stmt(s: ast.Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(s, ast.EmptyStmt):
        return [pad + ";"]
    if isinstance(s, ast.ExprStmt):
        return [pad + format_expression(s.expr) + ";"]
    if isinstance(s, ast.VarDecl):
        decls = ", ".join(
            d.name if d.init is None
            else f"{d.name} = {format_expression(d.init)}"
            for d in s.declarators
        )
        return [f"{pad}{s.type_name} {decls};"]
    if isinstance(s, ast.Block):
        lines = [pad + "{"]
        for inner in s.body:
            lines.extend(_format_stmt(inner, depth + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(s, ast.If):
        lines = [f"{pad}if ({format_expression(s.cond)})"]
        lines.extend(_format_stmt(s.then, depth + 1))
        if s.otherwise is not None:
            lines.append(pad + "else")
            lines.extend(_format_stmt(s.otherwise, depth + 1))
        return lines
    if isinstance(s, (ast.For, ast.Par)):
        keyword = "par" if isinstance(s, ast.Par) else "for"
        if isinstance(s.init, ast.VarDecl):
            init = _format_stmt(s.init, 0)[0].rstrip(";")
        elif s.init is not None:
            init = format_expression(s.init)
        else:
            init = ""
        cond = format_expression(s.cond) if s.cond is not None else ""
        update = format_expression(s.update) if s.update is not None else ""
        lines = [f"{pad}{keyword} ({init}; {cond}; {update})"]
        lines.extend(_format_stmt(s.body, depth + 1))
        return lines
    if isinstance(s, ast.While):
        lines = [f"{pad}while ({format_expression(s.cond)})"]
        lines.extend(_format_stmt(s.body, depth + 1))
        return lines
    if isinstance(s, ast.ComputeAction):
        return [f"{pad}({format_expression(s.percent)})%%{_coords(s.coords)};"]
    if isinstance(s, ast.TransferAction):
        return [f"{pad}({format_expression(s.percent)})%%"
                f"{_coords(s.src)}->{_coords(s.dst)};"]
    raise PMDLError(f"cannot print statement {type(s).__name__}")


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------

def format_struct(s: ast.StructDef) -> str:
    fields = " ".join(f"{f.type_name} {f.name};" for f in s.fields)
    return f"typedef struct {{{fields}}} {s.name};"


def format_algorithm(alg: ast.Algorithm) -> str:
    """Canonical PMDL source of one algorithm definition."""
    params = ", ".join(
        p.type_name + " " + p.name
        + "".join(f"[{format_expression(d)}]" for d in p.dims)
        for p in alg.params
    )
    lines = [f"algorithm {alg.name}({params}) {{"]

    coords = ", ".join(
        f"{c.name}={format_expression(c.extent)}" for c in alg.coords
    )
    lines.append(f"{_INDENT}coord {coords};")

    if alg.node_rules:
        lines.append(_INDENT + "node {")
        for rule in alg.node_rules:
            lines.append(
                f"{_INDENT * 2}{format_expression(rule.condition)} : "
                f"bench*({format_expression(rule.volume)});"
            )
        lines.append(_INDENT + "};")

    if alg.link_rules:
        header = _INDENT + "link"
        if alg.link_vars:
            vars_ = ", ".join(
                f"{v.name}={format_expression(v.extent)}" for v in alg.link_vars
            )
            header += f" ({vars_})"
        lines.append(header + " {")
        for rule in alg.link_rules:
            lines.append(
                f"{_INDENT * 2}{format_expression(rule.condition)} : "
                f"length*({format_expression(rule.volume)}) "
                f"{_coords(rule.src)}->{_coords(rule.dst)};"
            )
        lines.append(_INDENT + "};")

    if alg.parent is not None:
        lines.append(f"{_INDENT}parent{_coords(alg.parent.coords)};")

    if alg.scheme is not None:
        lines.append(_INDENT + "scheme {")
        for stmt in alg.scheme.body:
            lines.extend(_format_stmt(stmt, 2))
        lines.append(_INDENT + "};")

    lines.append("}")
    return "\n".join(lines)


def format_unit(items: list) -> str:
    """Canonical source of a whole parsed unit (structs + algorithms)."""
    parts = []
    for item in items:
        if isinstance(item, ast.StructDef):
            parts.append(format_struct(item))
        elif isinstance(item, ast.Algorithm):
            parts.append(format_algorithm(item))
        else:
            raise PMDLError(f"cannot print top-level {type(item).__name__}")
    return "\n\n".join(parts)
