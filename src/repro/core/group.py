"""HMPI group handles.

An :class:`HMPIGroup` is the per-rank result of ``HMPI_Group_create``: the
selected mapping of abstract processors to world processes, plus — for
members only — the MPI communicator over the selected processes
(``HMPI_Get_comm``).  Group rank ``i`` *is* abstract processor ``i`` of the
performance model (row-major over the model's coordinate space), so the
application's data distribution lines up with the model's volumes by
construction.
"""

from __future__ import annotations

from ..mpi.communicator import Comm
from ..util.errors import HMPIStateError
from .mapper import Mapping

__all__ = ["HMPIGroup"]


class HMPIGroup:
    """Per-rank handle to a created HMPI group.

    Attributes
    ----------
    gid:
        Runtime-wide creation id (the paper's opaque ``HMPI_Group``).
    mapping:
        The selected assignment: ``mapping.processes[i]`` is the world rank
        executing abstract processor ``i``; ``mapping.time`` is the
        predicted execution time that won the selection.
    parent_world_rank:
        The process shared with pre-existing groups ("the connecting link,
        through which results of computations are passed").
    """

    def __init__(
        self,
        gid: int,
        mapping: Mapping,
        comm: Comm | None,
        parent_world_rank: int,
        my_world_rank: int,
    ):
        self.gid = gid
        self.mapping = mapping
        self._comm = comm
        self.parent_world_rank = parent_world_rank
        self._my_world_rank = my_world_rank
        self._freed = False

    # ------------------------------------------------------------------
    # accessors (paper: HMPI_Group_rank / HMPI_Group_size / HMPI_Get_comm)
    # ------------------------------------------------------------------
    @property
    def is_member(self) -> bool:
        """Whether the calling process belongs to the group."""
        return self._comm is not None

    @property
    def size(self) -> int:
        """Number of processes in the group (HMPI_Group_size)."""
        return len(self.mapping.processes)

    @property
    def rank(self) -> int:
        """Group rank (= abstract processor index) of the calling process
        (HMPI_Group_rank); raises for non-members."""
        self._check()
        assert self._comm is not None
        return self._comm.rank

    @property
    def comm(self) -> Comm:
        """The MPI communicator over the group (HMPI_Get_comm).

        "Application programmers can use this communicator to call the
        standard MPI communication routines during the execution of the
        parallel algorithm."
        """
        self._check()
        assert self._comm is not None
        return self._comm

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """World rank of each group rank, in group-rank order."""
        return self.mapping.processes

    def concurrency_of(self, group_rank: int) -> int:
        """How many group members share the machine of ``group_rank``.

        This is the speed-sharing divisor the selection estimate assumed;
        members pass it to ``compute`` so execution matches the prediction
        (idle non-member ranks parked on the machine consume no CPU).
        """
        machine = self.mapping.machines[group_rank]
        return sum(1 for m in self.mapping.machines if m == machine)

    @property
    def my_concurrency(self) -> int:
        """Co-located member count for the calling process."""
        return self.concurrency_of(self.rank)

    def _check(self) -> None:
        if self._freed:
            raise HMPIStateError("operation on a freed HMPI group")
        if self._comm is None:
            raise HMPIStateError(
                f"process (world rank {self._my_world_rank}) is not a member "
                f"of HMPI group {self.gid}"
            )

    def _mark_freed(self) -> None:
        self._freed = True
        if self._comm is not None:
            self._comm.free()

    def __repr__(self) -> str:
        member = "member" if self.is_member else "non-member"
        return (f"HMPIGroup(gid={self.gid}, size={self.size}, {member}, "
                f"predicted={self.mapping.time:.6f}s)")
