"""The performance-model definition language (PMDL) and its compiler.

This package reproduces the paper's "small and dedicated model definition
language" (derived from mpC's network types) and the compiler that turns a
model description into the set of functions used by the HMPI runtime.
"""

from .analyze import analyze_algorithm, check_source
from .builder import CallableModel, MatrixModel
from .compiler import (
    clear_compile_cache,
    compile_cache_stats,
    compile_model,
    compile_source,
    compile_source_cached,
    source_digest,
)
from .diagnostics import RULES, Diagnostic, DiagnosticReport, Severity
from .lint import LintReport, lint_model
from .interp import ActionVisitor, Environment, Interpreter, Ref, StructValue
from .lexer import tokenize
from .model import (
    AbstractBoundModel,
    BoundModel,
    LinearActionVisitor,
    PerformanceModel,
    default_scheme_walk,
)
from .net import CommNet, NetEvent, ParInstance, lower_model
from .netcheck import check_model_net, check_net, probe_bindings
from .parser import parse, parse_expression
from .printer import (
    format_algorithm,
    format_coords,
    format_expression,
    format_struct,
    format_unit,
)

__all__ = [
    "compile_model",
    "analyze_algorithm",
    "check_source",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "RULES",
    "lint_model",
    "LintReport",
    "format_coords",
    "format_algorithm",
    "format_expression",
    "format_struct",
    "format_unit",
    "compile_source",
    "compile_source_cached",
    "source_digest",
    "compile_cache_stats",
    "clear_compile_cache",
    "parse",
    "parse_expression",
    "tokenize",
    "PerformanceModel",
    "BoundModel",
    "AbstractBoundModel",
    "LinearActionVisitor",
    "default_scheme_walk",
    "CallableModel",
    "MatrixModel",
    "CommNet",
    "NetEvent",
    "ParInstance",
    "lower_model",
    "check_net",
    "check_model_net",
    "probe_bindings",
    "ActionVisitor",
    "Interpreter",
    "Environment",
    "StructValue",
    "Ref",
]
