"""Point-to-point semantics: matching, ordering, wildcards, status."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, Status, run_mpi


class TestBasicSendRecv:
    def test_object_roundtrip(self, pair_cluster):
        def app(env):
            if env.rank == 0:
                env.comm_world.send({"x": 1}, 1, tag=3)
                return None
            return env.comm_world.recv(0, 3)

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == {"x": 1}

    def test_array_roundtrip(self, pair_cluster):
        def app(env):
            if env.rank == 0:
                env.comm_world.send(np.arange(10.0), 1)
                return None
            got = env.comm_world.recv(0)
            return got.sum()

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == pytest.approx(45.0)

    def test_status_filled(self, pair_cluster):
        def app(env):
            if env.rank == 0:
                env.comm_world.send(np.zeros(4), 1, tag=9)
                return None
            st = Status()
            env.comm_world.recv(ANY_SOURCE, ANY_TAG, status=st)
            return (st.source, st.tag, st.nbytes)

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == (0, 9, 32)

    def test_negative_user_tag_rejected(self, pair_cluster):
        from repro.util.errors import MPICommError

        def app(env):
            if env.rank == 0:
                with pytest.raises(MPICommError):
                    env.comm_world.send(1, 1, tag=-5)
            return True

        run_mpi(app, pair_cluster)

    def test_send_to_proc_null_is_noop(self, pair_cluster):
        def app(env):
            env.comm_world.send("x", PROC_NULL)
            got = env.comm_world.recv(PROC_NULL)
            return got

        res = run_mpi(app, pair_cluster)
        assert res.results == [None, None]


class TestMatching:
    def test_tag_selectivity(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send("first", 1, tag=1)
                c.send("second", 1, tag=2)
                return None
            second = c.recv(0, tag=2)
            first = c.recv(0, tag=1)
            return (first, second)

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == ("first", "second")

    def test_fifo_order_same_tag(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                for i in range(5):
                    c.send(i, 1, tag=7)
                return None
            return [c.recv(0, 7) for _ in range(5)]

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_any_source_any_tag(self, small_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                vals = sorted(c.recv(ANY_SOURCE, ANY_TAG) for _ in range(3))
                return vals
            c.send(env.rank * 10, 0, tag=env.rank)
            return None

        res = run_mpi(app, small_cluster)
        assert res.results[0] == [10, 20, 30]


class TestSendRecvCombined:
    def test_ring_shift(self, small_cluster):
        def app(env):
            c = env.comm_world
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            return c.sendrecv(env.rank, right, 0, left, 0)

        res = run_mpi(app, small_cluster)
        assert res.results == [3, 0, 1, 2]

    def test_pairwise_exchange_no_deadlock(self, pair_cluster):
        def app(env):
            c = env.comm_world
            other = 1 - env.rank
            return c.sendrecv(f"from-{env.rank}", other, 5, other, 5)

        res = run_mpi(app, pair_cluster)
        assert res.results == ["from-1", "from-0"]


class TestProbe:
    def test_probe_then_recv(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(np.zeros(3), 1, tag=4)
                return None
            st = c.probe(0, 4)
            count = st.get_count(8)
            value = c.recv(0, 4)
            return (count, len(value))

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == (3, 3)

    def test_iprobe_none_when_empty(self, pair_cluster):
        def app(env):
            c = env.comm_world
            if env.rank == 1:
                first = c.iprobe(0, 9)       # nothing sent yet (may be None)
                c.send("go", 0, tag=1)
                got = c.recv(0, 9)
                return got
            c.recv(1, 1)                      # wait for rank 1's null probe
            c.send("done", 1, tag=9)
            return None

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == "done"


class TestWorldAccessors:
    def test_rank_size_machine(self, small_cluster):
        def app(env):
            return (env.rank, env.size, env.machine.name, env.comm_world.rank)

        res = run_mpi(app, small_cluster)
        for r, out in enumerate(res.results):
            assert out == (r, 4, f"m{r:02d}", r)
