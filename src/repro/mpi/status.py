"""Status objects and matching wildcards."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG", "UNDEFINED", "PROC_NULL"]

#: Wildcard source for receive matching (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for receive matching (MPI_ANY_TAG).
ANY_TAG = -1
#: MPI_UNDEFINED — returned by rank queries for non-members, and usable as
#: the color of ranks excluded by Comm.split.
UNDEFINED = -32766
#: MPI_PROC_NULL — send/recv to it is a no-op completing immediately.
PROC_NULL = -2


@dataclass
class Status:
    """Completion information of a receive.

    Attributes mirror MPI_Status: the matched ``source`` and ``tag`` (the
    actual values, never wildcards), the message size in bytes, and the
    virtual time the message arrived at the receiver's machine.
    """

    source: int = UNDEFINED
    tag: int = UNDEFINED
    nbytes: int = 0
    arrival_vtime: float = 0.0

    def get_count(self, elem_size: int = 1) -> int:
        """Number of elements of ``elem_size`` bytes in the message."""
        if elem_size <= 0:
            raise ValueError("elem_size must be > 0")
        return self.nbytes // elem_size
