"""Unified observability: metrics, runtime spans, Chrome-trace export,
and Timeof prediction-accuracy tracking.

Quick use::

    from repro.obs import Observability
    obs = Observability()
    run_hmpi(app, cluster, obs=obs)
    obs.write_chrome_trace("trace.json")      # open in ui.perfetto.dev
    print(obs.accuracy.render())              # predicted vs measured
    json.dump(obs.snapshot(), fh)             # metrics + accuracy

See ``docs/OBSERVABILITY.md`` for the metrics catalogue and the span
taxonomy.
"""

from .accuracy import PredictionRecord, PredictionTracker, model_key
from .chrometrace import (
    RANKS_PID,
    RUNTIME_PID,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .core import Observability
from .netexport import net_chrome_trace, schedule_net
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_selection_stats,
)
from .openmetrics import parse_openmetrics, render_openmetrics
from .server import EVENTS_TAIL_CAP, MonitorRoutes, MonitorServer
from .spans import Span, SpanLog
from .telemetry import TELEMETRY_SCHEMA_VERSION, EventBus, TelemetryEvent

__all__ = [
    "Observability",
    "MetricsRegistry",
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "publish_selection_stats",
    "EventBus",
    "TelemetryEvent",
    "TELEMETRY_SCHEMA_VERSION",
    "render_openmetrics",
    "parse_openmetrics",
    "MonitorServer",
    "MonitorRoutes",
    "EVENTS_TAIL_CAP",
    "Span",
    "SpanLog",
    "PredictionTracker",
    "PredictionRecord",
    "model_key",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "net_chrome_trace",
    "schedule_net",
    "RANKS_PID",
    "RUNTIME_PID",
]
