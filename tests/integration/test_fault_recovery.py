"""Failure injection through the HMPI stack (the FT direction the paper's
conclusion points at)."""

import pytest

from repro.cluster import FaultSchedule, inject_faults, paper_network, uniform_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel


class TestFailureSurface:
    def test_group_member_failure_recorded(self):
        cluster = uniform_network([100.0, 100.0, 100.0])
        inject_faults(cluster, FaultSchedule({"m01": 0.5}))
        model = CallableModel(3, lambda i: 200.0, lambda s, d: 0.0)

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                hmpi.compute(200.0)  # 2 s; m01 dies at 0.5
                gid.comm.barrier()
                hmpi.group_free(gid)
            return "ok"

        res = run_hmpi(app, cluster, timeout=20)
        assert res.failed
        assert res.failures[0].machine == "m01"

    def test_survivors_recreate_group_without_dead_machine(self):
        """The recovery pattern: catch the failure signal, mark the rank
        dead, and create a smaller group on the survivors."""
        cluster = paper_network()
        inject_faults(cluster, FaultSchedule({"ws06": 0.1}))  # fastest dies
        model_big = CallableModel(3, lambda i: 100.0, lambda s, d: 0.0)

        def app(hmpi):
            # Rank 6's machine is dead almost immediately; it drops out.
            if hmpi.rank == 6:
                hmpi.compute(100.0)  # raises MachineFailure inside
                return None
            hmpi.mark_dead(6)
            gid = hmpi.group_create(model_big)
            ranks = gid.world_ranks
            if gid.is_member:
                gid.comm.barrier()
                hmpi.group_free(gid)
            return ranks

        res = run_hmpi(app, cluster, timeout=20)
        assert res.failed  # rank 6's machine failure is recorded
        ranks = res.results[0]
        assert 6 not in ranks
        assert len(ranks) == 3

    def test_clean_run_has_no_failures(self):
        cluster = paper_network()
        model = CallableModel(2, lambda i: 10.0, lambda s, d: 0.0)

        def app(hmpi):
            gid = hmpi.group_create(model)
            if gid.is_member:
                gid.comm.barrier()
                hmpi.group_free(gid)
            return True

        res = run_hmpi(app, cluster)
        assert not res.failed
        assert all(res.results)
