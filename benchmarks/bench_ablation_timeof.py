"""Ablation — is the Figure 8 Timeof sweep trustworthy?

The paper's matrix program picks the generalized block size by evaluating
``HMPI_Timeof`` for every candidate instead of actually running each one.
This bench validates that shortcut: for every candidate l we record both
the prediction and a real (simulated) execution, and check that the l the
sweep would pick is also the l with the fastest actual run.  It also
measures repeating the whole prediction sweep through the runtime's
selection cache (the paper's program re-evaluates Timeof in a loop, so
repeated sweeps between Recon calls should be nearly free).
"""

import time

import pytest

from repro.apps.matmul import (
    bind_matmul_model,
    candidate_block_sizes,
    heterogeneous_distribution,
    run_matmul_hmpi,
    speed_grid,
)
from repro.cluster import PAPER_SPEEDS, paper_network
from repro.core import GreedyMapper, NetworkModel
from repro.core.runtime import HMPIRuntimeState
from repro.util.tables import Table

N = 18
R = 8
M = 3
SEED = 13


def _sweep():
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    grid = speed_grid(list(PAPER_SPEEDS), M, host_machine=0)
    mapper = GreedyMapper()

    rows = []
    for l in candidate_block_sizes(N, M):
        dist = heterogeneous_distribution(N, l, grid)
        model = bind_matmul_model(dist, R)
        mapping = mapper.select(model, netmodel, list(range(cluster.size)),
                                {model.parent_index(): 0})
        measured = run_matmul_hmpi(paper_network(), n=N, r=R, m=M, l=l,
                                   seed=SEED, mapper=mapper)
        rows.append((l, mapping.time, measured.algorithm_time))
    return rows


def _cached_sweep():
    """Cold vs warm full-sweep cost through the selection cache."""
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    grid = speed_grid(list(PAPER_SPEEDS), M, host_machine=0)
    state = HMPIRuntimeState(netmodel, mapper="greedy")
    models = [
        bind_matmul_model(heterogeneous_distribution(N, l, grid), R)
        for l in candidate_block_sizes(N, M)
    ]

    t0 = time.perf_counter()
    for model in models:
        state.select(model)
    cold = time.perf_counter() - t0

    repeats = 50
    t0 = time.perf_counter()
    for _ in range(repeats):
        for model in models:
            state.select(model)
    warm = (time.perf_counter() - t0) / repeats

    assert state.selection_stats.cache_misses == len(models)
    assert state.selection_stats.cache_hits == repeats * len(models)
    return cold * 1000, warm * 1000


def test_ablation_timeof(benchmark, report):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    cold_ms, warm_ms = _cached_sweep()

    t = Table("l", "Timeof predicted (s)", "executed (s)",
              title=f"Ablation — Timeof sweep vs real execution "
                    f"(MM, n={N}, r={R})")
    for l, pred, measured in rows:
        t.add(l, pred, measured)
    report.emit(t.render())

    predicted_best = min(rows, key=lambda r: r[1])[0]
    actual_best = min(rows, key=lambda r: r[2])[0]
    report.emit(f"Timeof picks l = {predicted_best}; "
                f"actually fastest l = {actual_best}")

    c = Table("Timeof sweep", "cost (ms)",
              title="Selection cache (full l-sweep, greedy mapper)")
    c.add("cold (first sweep)", cold_ms)
    c.add("warm (cached, avg of 50)", warm_ms)
    c.add("speedup (x)", cold_ms / warm_ms)
    report.emit(c.render())

    # The paper's shortcut is sound: the sweep picks the truly fastest l,
    # and every individual prediction is tight.
    assert predicted_best == actual_best
    for _, pred, measured in rows:
        assert pred == pytest.approx(measured, rel=0.1)
    # Repeating the sweep between Recon calls must be at least 5x cheaper.
    assert cold_ms / warm_ms >= 5.0
