"""Network model (estimated speeds + link costs)."""

import pytest

from repro.cluster import paper_network, uniform_network
from repro.core.netmodel import NetworkModel
from repro.util.errors import HMPIError


def make(cluster=None, placement=None, **kw):
    cluster = cluster or uniform_network([100.0, 50.0])
    placement = placement if placement is not None else list(range(cluster.size))
    return NetworkModel(cluster, placement, **kw)


class TestConstruction:
    def test_defaults_to_nominal_speeds(self):
        nm = make(paper_network())
        assert nm.speeds().tolist() == [46, 46, 46, 46, 46, 46, 176, 106, 9]

    def test_explicit_initial_speeds(self):
        nm = make(initial_speeds=[10.0, 20.0])
        assert nm.speed_of_machine(0) == 10.0

    def test_initial_speeds_length_checked(self):
        with pytest.raises(HMPIError):
            make(initial_speeds=[1.0])

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(HMPIError):
            make(initial_speeds=[0.0, 1.0])


class TestPlacement:
    def test_machine_of(self):
        nm = make(placement=[1, 0, 1])
        assert nm.nprocs == 3
        assert nm.machine_of(0) == 1
        assert nm.machine_of(1) == 0


class TestSpeedUpdates:
    def test_update_speed(self):
        nm = make()
        nm.update_speed(1, 75.0)
        assert nm.speed_of_machine(1) == 75.0

    def test_update_rejects_nonpositive(self):
        with pytest.raises(HMPIError):
            make().update_speed(0, -1.0)

    def test_benchmark_refresh(self):
        nm = make()
        # process 0 took 0.02s for 1 unit -> 50 units/s; process 1 took 0.1s
        nm.update_speeds_from_benchmark([0.02, 0.1], volume=1.0)
        assert nm.speed_of_machine(0) == pytest.approx(50.0)
        assert nm.speed_of_machine(1) == pytest.approx(10.0)

    def test_benchmark_refresh_colocated_scales_up(self):
        nm = make(placement=[0, 0, 1])
        # two processes shared machine 0; each measured 0.04s/unit ->
        # full-machine speed is 2 * 1/0.04 = 50.
        nm.update_speeds_from_benchmark([0.04, 0.04, 0.1], volume=1.0)
        assert nm.speed_of_machine(0) == pytest.approx(50.0)

    def test_benchmark_refresh_uses_slowest_on_machine(self):
        nm = make(placement=[0, 0])
        nm.update_speeds_from_benchmark([0.04, 0.08], volume=1.0)
        assert nm.speed_of_machine(0) == pytest.approx(2 / 0.08)

    def test_benchmark_length_mismatch(self):
        with pytest.raises(HMPIError):
            make().update_speeds_from_benchmark([0.1], volume=1.0)

    def test_benchmark_zero_time_rejected(self):
        with pytest.raises(HMPIError):
            make().update_speeds_from_benchmark([0.0, 0.1], volume=1.0)


class TestTransferCosts:
    def test_transfer_time_matches_cluster(self):
        cluster = uniform_network([1.0, 1.0])
        nm = make(cluster)
        assert nm.transfer_time(0, 1, 12_500_000) == pytest.approx(
            cluster.transfer_time(0, 1, 12_500_000)
        )

    def test_latency(self):
        nm = make()
        assert nm.latency(0, 1) == pytest.approx(1.5e-4)
