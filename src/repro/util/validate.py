"""Small validation helpers used across the package.

These keep argument checking terse and the error messages uniform.  They are
deliberately plain functions (not decorators) so call sites stay explicit and
greppable — following the "make it work, make it legible" ordering of the
scientific-python optimization workflow.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

from .errors import ReproError

T = TypeVar("T")

__all__ = [
    "require",
    "check_positive",
    "check_nonnegative",
    "check_rank",
    "check_square_matrix_of",
    "check_length",
]


def require(condition: bool, message: str, exc: type[Exception] = ReproError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive(value: float, name: str, exc: type[Exception] = ValueError) -> float:
    """Return ``value`` if strictly positive, otherwise raise."""
    if not value > 0:
        raise exc(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str, exc: type[Exception] = ValueError) -> float:
    """Return ``value`` if >= 0, otherwise raise."""
    if value < 0:
        raise exc(f"{name} must be >= 0, got {value!r}")
    return value


def check_rank(rank: int, size: int, exc: type[Exception] = ValueError) -> int:
    """Validate ``0 <= rank < size`` and return ``rank``."""
    if not isinstance(rank, int) or isinstance(rank, bool):
        raise exc(f"rank must be an int, got {type(rank).__name__}")
    if not 0 <= rank < size:
        raise exc(f"rank {rank} out of range for size {size}")
    return rank


def check_length(seq: Sequence[T], n: int, name: str, exc: type[Exception] = ValueError) -> Sequence[T]:
    """Validate ``len(seq) == n`` and return ``seq``."""
    if len(seq) != n:
        raise exc(f"{name} must have length {n}, got {len(seq)}")
    return seq


def check_square_matrix_of(mat: Sequence[Sequence[T]], n: int, name: str, exc: type[Exception] = ValueError) -> Sequence[Sequence[T]]:
    """Validate ``mat`` is an ``n x n`` nested sequence and return it."""
    if len(mat) != n:
        raise exc(f"{name} must be {n}x{n}, got {len(mat)} rows")
    for i, row in enumerate(mat):
        if len(row) != n:
            raise exc(f"{name} must be {n}x{n}, row {i} has length {len(row)}")
    return mat
