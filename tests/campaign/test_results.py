"""Result rows, canonical JSONL, summaries, and the baseline checker."""

import json

import pytest

from repro.campaign import (
    SCHEMA_VERSION,
    ResultsWriter,
    baseline_from_rows,
    canonical_json,
    check_against_baseline,
    load_baseline,
    read_rows,
)
from repro.util.errors import CampaignError


def writer_with(*metricses):
    w = ResultsWriter()
    for i, metrics in enumerate(metricses):
        w.add(i, 1000 + i, {"x": i}, metrics)
    return w


class TestResultsWriter:
    def test_row_shape(self):
        w = writer_with({"makespan": 1.0})
        (row,) = w.rows
        assert row["schema"] == SCHEMA_VERSION
        assert row["status"] == "ok" and row["error"] is None
        assert row["cell"] == {"x": 0} and row["seed"] == 1000

    def test_error_rows_need_error_text(self):
        w = ResultsWriter()
        with pytest.raises(CampaignError):
            w.add(0, 1, {}, {}, status="error", error=None)
        with pytest.raises(CampaignError):
            w.add(0, 1, {}, {}, status="ok", error="boom")
        with pytest.raises(CampaignError):
            w.add(0, 1, {}, {}, status="weird", error=None)

    def test_jsonl_is_canonical(self):
        w = writer_with({"b": 2, "a": 1})
        line = w.jsonl().splitlines()[0]
        assert line == canonical_json(json.loads(line))
        assert '"a":1,"b":2' in line  # sorted keys, compact separators

    def test_streams_to_disk_and_summary(self, tmp_path):
        w = ResultsWriter(tmp_path / "out")
        w.add(0, 1, {"x": 0}, {"m": 1.5})
        w.add(1, 2, {"x": 1}, {}, status="error", error="boom")
        summary = w.finish("camp", {"name": "camp"})
        assert summary["runs"] == 2 and summary["ok"] == 1
        assert summary["errors"] == 1
        assert summary["schema_version"] == SCHEMA_VERSION
        on_disk = json.loads((tmp_path / "out" / "summary.json").read_text())
        assert on_disk == summary
        assert len(read_rows(tmp_path / "out")) == 2

    def test_read_rows_rejects_other_schema(self, tmp_path):
        d = tmp_path / "out"
        d.mkdir()
        row = {"schema": SCHEMA_VERSION + 1, "run": 0, "seed": 1, "cell": {},
               "status": "ok", "metrics": {}, "error": None}
        (d / "results.jsonl").write_text(json.dumps(row) + "\n")
        with pytest.raises(CampaignError, match="schema"):
            read_rows(d)

    def test_read_rows_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="no results"):
            read_rows(tmp_path / "nope.jsonl")


class TestBaselineChecker:
    def rows(self, makespan=1.0, ok=True, extra=None):
        metrics = {"makespan": makespan, "recovered": ok,
                   "repairs": 2, "tag": "x"}
        if extra:
            metrics.update(extra)
        return writer_with(metrics).rows

    def test_identical_rows_pass(self):
        rows = self.rows()
        assert check_against_baseline(rows, baseline_from_rows(rows)) == []

    def test_within_tolerance_passes(self):
        baseline = baseline_from_rows(self.rows(makespan=1.0),
                                      tolerances={"makespan": 0.05})
        assert check_against_baseline(self.rows(makespan=1.03), baseline) == []

    def test_regression_beyond_tolerance_fails(self):
        baseline = baseline_from_rows(self.rows(makespan=1.0),
                                      tolerances={"makespan": 0.02})
        failures = check_against_baseline(self.rows(makespan=1.05), baseline)
        assert failures and "makespan" in failures[0]

    def test_bool_metric_compares_by_equality_not_tolerance(self):
        # bool is an int subclass: under a relative tolerance False->True
        # would "pass" any tolerance >= 1.  It must not.
        baseline = baseline_from_rows(self.rows(ok=True),
                                      tolerances={"recovered": 10.0})
        failures = check_against_baseline(self.rows(ok=False), baseline)
        assert failures and "recovered" in failures[0]

    def test_exact_default_for_unlisted_numeric_metric(self):
        baseline = baseline_from_rows(self.rows())
        drifted = self.rows()
        drifted[0]["metrics"]["repairs"] = 3
        assert check_against_baseline(drifted, baseline)

    def test_missing_cell_fails(self):
        baseline = baseline_from_rows(self.rows())
        failures = check_against_baseline([], baseline)
        assert failures and "missing from results" in failures[0]

    def test_uncovered_result_cell_fails(self):
        rows = self.rows()
        baseline = baseline_from_rows([])
        failures = check_against_baseline(rows, baseline)
        assert failures and "not covered" in failures[0]

    def test_status_flip_fails(self):
        rows = self.rows()
        baseline = baseline_from_rows(rows)
        flipped = [dict(rows[0], status="error", error="boom")]
        failures = check_against_baseline(flipped, baseline)
        assert failures and "status" in failures[0]

    def test_missing_metric_fails(self):
        rows = self.rows()
        baseline = baseline_from_rows(rows)
        stripped = [dict(rows[0], metrics={"makespan": 1.0})]
        assert check_against_baseline(stripped, baseline)

    def test_load_baseline_validates(self, tmp_path):
        p = tmp_path / "b.json"
        with pytest.raises(CampaignError, match="no baseline"):
            load_baseline(p)
        p.write_text("{broken")
        with pytest.raises(CampaignError, match="not valid JSON"):
            load_baseline(p)
        p.write_text(json.dumps({"schema_version": 99, "cells": []}))
        with pytest.raises(CampaignError, match="schema"):
            load_baseline(p)
        p.write_text(json.dumps(baseline_from_rows(self.rows())))
        assert load_baseline(p)["cells"]
