"""Concurrent serving over real HTTP: isolation, batching, degradation.

Everything runs against in-process servers (inline lanes) on ephemeral
ports; the multiprocessing path is covered by the throughput bench and
the CI smoke job.
"""

import json
import threading
import time

import pytest

from repro.obs import parse_openmetrics
from repro.serve import (
    Executor,
    ServeClient,
    ServeHTTPError,
    ServeServer,
    validate_request,
)
from repro.serve.protocol import canonical_digest, cluster_digest

RING = """
algorithm Ring(int p, int v[p]) {
  coord I=p;
  node {I>=0: bench*(v[I]);};
  link (L=p) { L == (I+1)%p : length*(64) [L]->[I]; };
  parent[0];
}
"""

#: A campaign cell that takes a few hundred ms — the "slow tenant" payload.
SLOW_CAMPAIGN = {
    "name": "slow", "app": "iterative",
    "fixed": {"cluster": {"kind": "uniform", "speeds": [100] * 6},
              "n": 48, "niter": 3000, "k": 100, "p": 5, "chunk": 3000},
    "axes": {"policy": ["never"]},
}


def ring_job(v, **over):
    raw = {"op": "timeof", "model": RING,
           "params": {"p": len(v), "v": v}, "cluster": "paper"}
    raw.update(over)
    return raw


def metric_total(text: str, family: str, **labels) -> float:
    """Sum of a counter family's samples matching the given labels."""
    fam = parse_openmetrics(text).get(family)
    if fam is None:
        return 0.0
    return sum(value for name, got, value in fam["samples"]
               if name == f"{family}_total"
               and all(got.get(k) == v for k, v in labels.items()))


@pytest.fixture()
def server():
    srv = ServeServer(workers=0).start_background()
    yield srv
    srv.stop()


class TestParallelIsolation:
    def test_hammering_clients_get_their_own_answers(self, server):
        # Each client's params differ; each response must carry the
        # prediction for *its* params, bitwise equal to a local Executor.
        payloads = [[10 * (i + 1)] * 4 for i in range(12)]
        expected = {}
        ex = Executor()
        for v in payloads:
            expected[tuple(v)] = ex.execute(
                validate_request(ring_job(v)))["predicted_time"]
        assert len(set(expected.values())) == len(payloads)  # all distinct

        results: dict[int, object] = {}

        def hammer(i, v):
            client = ServeClient(server.url, tenant=f"tenant-{i}")
            try:
                results[i] = client.timeof(RING,
                                           params={"p": len(v), "v": v},
                                           cluster="paper")
            except Exception as exc:  # pragma: no cover - surfaced below
                results[i] = exc

        threads = [threading.Thread(target=hammer, args=(i, v))
                   for i, v in enumerate(payloads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == {
            i: expected[tuple(v)] for i, v in enumerate(payloads)}

    def test_identical_burst_coalesces_to_fewer_batches(self):
        # A long batch window guarantees the whole burst lands in one
        # flush: 8 jobs, 1 evaluation, 7 coalesced.
        srv = ServeServer(workers=0, batch_window=0.25).start_background()
        try:
            results = []

            def submit(i):
                client = ServeClient(srv.url, tenant=f"burst-{i}")
                results.append(client.timeof(
                    RING, params={"p": 4, "v": [5, 5, 5, 5]},
                    cluster="paper"))

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(set(results)) == 1  # one answer, shared
            health = ServeClient(srv.url).healthz()
            stats = health["batcher"]
            assert stats["jobs_in"] == 8
            assert stats["coalesced"] >= 7
            text = ServeClient(srv.url).metrics_text()
            assert metric_total(text, "serve_jobs_coalesced") >= 7
            assert metric_total(text, "serve_batches_dispatched") == 1
        finally:
            srv.stop()


class TestCacheMetrics:
    def test_cache_hits_observable_per_tenant(self, server):
        a = ServeClient(server.url, tenant="team-a")
        b = ServeClient(server.url, tenant="team-b")
        v = [7, 7, 7, 7]
        first = a.timeof(RING, params={"p": 4, "v": v}, cluster="paper")
        second = b.timeof(RING, params={"p": 4, "v": v}, cluster="paper")
        assert first == second
        text = a.metrics_text()
        # team-a paid the miss; team-b rode the shared selection cache.
        assert metric_total(text, "serve_cache_misses", tenant="team-a") == 1
        assert metric_total(text, "serve_cache_hits", tenant="team-b") == 1
        assert metric_total(text, "serve_jobs_submitted", tenant="team-a") == 1
        assert metric_total(text, "serve_jobs_completed",
                            tenant="team-b", status="done") == 1


class TestDegradation:
    def test_tenant_quota_is_429_and_isolated(self):
        srv = ServeServer(workers=0, max_inflight_per_tenant=1,
                          batch_window=0.5).start_background()
        try:
            greedy = ServeClient(srv.url, tenant="greedy")
            polite = ServeClient(srv.url, tenant="polite")
            # First job parks in the (slow) batch window; the second
            # overruns the tenant's in-flight quota.
            greedy.submit(ring_job([1, 1, 1, 1]), wait=0)
            with pytest.raises(ServeHTTPError) as err:
                greedy.submit(ring_job([2, 2, 2, 2]), wait=0)
            assert err.value.status == 429
            assert "quota" in str(err.value)
            # Another tenant is not affected by greedy's rejection.
            doc = polite.submit(ring_job([3, 3, 3, 3]), wait=0)
            assert doc["status"] == "queued"
            text = ServeClient(srv.url).metrics_text()
            assert metric_total(text, "serve_jobs_rejected",
                                tenant="greedy") == 1
        finally:
            srv.stop()

    def test_job_budget_expires_to_504_timeout(self, server):
        client = ServeClient(server.url, tenant="hasty")
        with pytest.raises(ServeHTTPError) as err:
            client.submit({"op": "campaign_cell", "campaign": SLOW_CAMPAIGN,
                           "cell": 0, "timeout": 0.05}, wait=5)
        assert err.value.status == 504
        doc = err.value.payload
        assert doc["status"] == "timeout"
        assert "budget" in doc["error"]
        # The late worker result is discarded: the job stays timed out.
        time.sleep(1.5)
        assert client.job(doc["id"])["status"] == "timeout"
        text = client.metrics_text()
        assert metric_total(text, "serve_jobs_completed",
                            tenant="hasty", status="timeout") == 1

    def test_wait_expiry_is_504_but_job_completes(self, server):
        client = ServeClient(server.url, tenant="patient")
        with pytest.raises(ServeHTTPError) as err:
            client.submit({"op": "campaign_cell", "campaign": SLOW_CAMPAIGN,
                           "cell": 0}, wait=0.05)
        assert err.value.status == 504
        doc = err.value.payload
        assert "poll the id" in doc["error"]
        final = client.wait(doc["id"], timeout=30)
        assert final["status"] == "done"
        assert final["result"]["metrics"]["outcome"] == "done"

    def test_slow_tenant_cannot_starve_a_fast_one(self, server):
        # The slow tenant parks several long cells on its world's lane
        # (wait=0).  A fast tenant whose world shards to a *different*
        # lane must keep answering promptly while they grind.
        slow_lane = server._pool.lane_of(canonical_digest(SLOW_CAMPAIGN))
        fast_cluster = None
        for n in range(4, 12):
            spec = {"kind": "homogeneous", "n": n}
            if server._pool.lane_of(cluster_digest(spec)) != slow_lane:
                fast_cluster = spec
                break
        assert fast_cluster is not None
        slow = ServeClient(server.url, tenant="slow")
        fast = ServeClient(server.url, tenant="fast")
        ids = [slow.submit({"op": "campaign_cell",
                            "campaign": SLOW_CAMPAIGN, "cell": 0},
                           wait=0)["id"]
               for _ in range(3)]
        t0 = time.monotonic()
        predicted = fast.timeof(
            RING, params={"p": 4, "v": [9, 9, 9, 9]},
            cluster=fast_cluster)
        fast_elapsed = time.monotonic() - t0
        # Three ~0.5s cells are queued on one lane; the fast answer must
        # not have waited for that queue to drain.
        assert predicted > 0
        assert fast_elapsed < 1.0
        for jid in ids:
            assert slow.wait(jid, timeout=30)["status"] == "done"


class TestProtocolSurface:
    def test_wait_zero_gives_202_then_poll(self, server):
        client = ServeClient(server.url, tenant="poller")
        doc = client.submit(ring_job([4, 4, 4, 4]), wait=0)
        assert doc["status"] in ("queued", "running")
        final = client.wait(doc["id"], timeout=30)
        assert final["status"] == "done"
        assert final["result"]["op"] == "timeof"
        assert final["result"]["mapping"]["time"] > 0

    def test_trace_export_of_a_done_job(self, server):
        client = ServeClient(server.url, tenant="tracer")
        doc = client.submit(ring_job([6, 6, 6, 6]))
        assert doc["status"] == "done"
        trace = client.trace(doc["id"])
        assert trace["traceEvents"]
        meta = trace["otherData"]
        assert meta["predicted_time"] == doc["result"]["mapping"]["time"]
        assert meta["model_digest"] == doc["result"]["model_digest"]

    def test_trace_of_a_check_job_is_400(self, server):
        client = ServeClient(server.url, tenant="tracer")
        doc = client.submit({"op": "check", "model": RING})
        assert doc["status"] == "done"
        with pytest.raises(ServeHTTPError) as err:
            client.trace(doc["id"])
        assert err.value.status == 400

    def test_unknown_job_is_404(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeHTTPError) as err:
            client.job("j99999999")
        assert err.value.status == 404

    def test_invalid_request_is_400_with_reason(self, server):
        client = ServeClient(server.url)
        with pytest.raises(ServeHTTPError) as err:
            client.submit({"op": "timeof", "model": RING,
                           "cluster": "paper", "mapper": "magic"})
        assert err.value.status == 400
        assert "unknown mapper" in str(err.value)

    def test_non_json_body_is_400(self, server):
        import urllib.error
        import urllib.request
        req = urllib.request.Request(
            server.url + "/v1/jobs", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=5)
        assert err.value.code == 400

    def test_method_misuse_is_405(self, server):
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/v1/jobs", timeout=5)
        assert err.value.code == 405

    def test_monitoring_surface_is_mounted(self, server):
        client = ServeClient(server.url)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert "jobs" in health and "batcher" in health
        parse_openmetrics(client.metrics_text())  # strict format check

    def test_events_hardening_applies_to_the_job_server_too(self, server):
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/events?n=-3", timeout=5)
        assert err.value.code == 400
        with urllib.request.urlopen(server.url + "/events?n=5",
                                    timeout=5) as resp:
            assert resp.status == 200

    def test_execution_error_is_typed_not_a_500_crash(self, server):
        client = ServeClient(server.url, tenant="oops")
        with pytest.raises(ServeHTTPError) as err:
            client.submit({"op": "timeof", "model": RING,
                           "params": {"p": 4, "v": [1, 2, 3]},  # wrong len
                           "cluster": "paper"})
        assert err.value.status == 400  # typed, not a 500
        doc = err.value.payload
        assert doc["status"] == "error"
        assert "bind" in doc["error"]
        # The job stayed pollable with its typed error.
        assert client.job(doc["id"])["status"] == "error"

    def test_served_check_reports_real_diagnostics(self, server):
        client = ServeClient(server.url, tenant="checker")
        result = client.check("algorithm Broken(int p) { coord I=p; }")
        assert result["op"] == "check"
        assert isinstance(result["report"], dict)


class TestJobStoreAccounting:
    def test_healthz_counts_settle_after_a_burst(self, server):
        client = ServeClient(server.url, tenant="auditor")
        for i in range(3):
            client.timeof(RING, params={"p": 4, "v": [i + 1] * 4},
                          cluster="paper")
        health = client.healthz()
        assert health["jobs"]["inflight"] == 0
        assert health["jobs"]["submitted"] >= 3
