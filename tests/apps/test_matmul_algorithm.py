"""Parallel matrix multiplication: numerics against NumPy ground truth."""

import numpy as np
import pytest

from repro.apps.matmul.algorithm import (
    assemble_matrix,
    matmul_algorithm,
    matrix_block,
    reference_product,
)
from repro.apps.matmul.distribution import (
    heterogeneous_distribution,
    homogeneous_distribution,
)
from repro.cluster import homogeneous_network
from repro.mpi import run_mpi


def gathered_product(dist, r, seed, cluster=None):
    cluster = cluster or homogeneous_network(dist.m * dist.m)

    def app(env):
        return matmul_algorithm(env.compute, env.comm_world, dist, r, seed)

    res = run_mpi(app, cluster, timeout=60)
    n = dist.n
    C = np.zeros((n * r, n * r))
    for rank_blocks in res.results:
        for (bi, bj), blk in rank_blocks.items():
            C[bi * r:(bi + 1) * r, bj * r:(bj + 1) * r] = blk
    return C


class TestMatrixBlocks:
    def test_deterministic(self):
        a = matrix_block(1, 0, 2, 3, 4)
        b = matrix_block(1, 0, 2, 3, 4)
        assert (a == b).all()

    def test_distinct_blocks_differ(self):
        a = matrix_block(1, 0, 0, 0, 4)
        b = matrix_block(1, 0, 0, 1, 4)
        c = matrix_block(1, 1, 0, 0, 4)
        assert not (a == b).all()
        assert not (a == c).all()

    def test_assemble_matches_blocks(self):
        m = assemble_matrix(2, 0, 3, 2)
        assert (m[2:4, 0:2] == matrix_block(2, 0, 1, 0, 2)).all()


class TestHomogeneousAlgorithm:
    @pytest.mark.parametrize("n,l,m,r", [(4, 2, 2, 3), (6, 2, 2, 2), (6, 3, 3, 2)])
    def test_matches_numpy(self, n, l, m, r):
        dist = homogeneous_distribution(n, m)
        C = gathered_product(dist, r, seed=7)
        assert np.allclose(C, reference_product(7, n, r))


class TestHeterogeneousAlgorithm:
    @pytest.mark.parametrize("l", [4, 8])
    def test_matches_numpy_2x2(self, l):
        speeds = np.array([[4.0, 1.0], [2.0, 3.0]])
        dist = heterogeneous_distribution(8, l, speeds)
        C = gathered_product(dist, r=3, seed=5)
        assert np.allclose(C, reference_product(5, 8, 3))

    def test_matches_numpy_3x3(self):
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1, 10, (3, 3))
        dist = heterogeneous_distribution(6, 6, speeds)
        C = gathered_product(dist, r=2, seed=11, cluster=homogeneous_network(9))
        assert np.allclose(C, reference_product(11, 6, 2))

    def test_extreme_skew(self):
        speeds = np.array([[100.0, 1.0], [1.0, 1.0]])
        dist = heterogeneous_distribution(6, 6, speeds)
        C = gathered_product(dist, r=2, seed=3)
        assert np.allclose(C, reference_product(3, 6, 2))


class TestVolumeAccounting:
    def test_compute_units_equal_owned_blocks_times_steps(self):
        """Each rank must charge exactly area * n benchmark units."""
        dist = homogeneous_distribution(4, 2)
        charged = {}

        def app(env):
            total = [0.0]

            def counting_compute(v):
                total[0] += v
                return env.compute(v)

            matmul_algorithm(counting_compute, env.comm_world, dist, 2, 0)
            return total[0]

        res = run_mpi(app, homogeneous_network(4), timeout=60)
        for g, units in enumerate(res.results):
            assert units == pytest.approx(dist.area(g) * dist.n)

    def test_wrong_comm_size_rejected(self):
        from repro.util.errors import ReproError

        dist = homogeneous_distribution(4, 2)

        def app(env):
            with pytest.raises(ReproError):
                matmul_algorithm(env.compute, env.comm_world, dist, 2, 0)
            return True

        run_mpi(app, homogeneous_network(3), timeout=30)
