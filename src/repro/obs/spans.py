"""Runtime span tracing with parent/child nesting.

Where :class:`repro.mpi.tracing.Tracer` records what the *substrate* did
(compute intervals, message sends, receive waits), spans record what the
*runtime* was doing and why: one :class:`Span` covers a principal HMPI
operation — ``HMPI_Recon``, ``HMPI_Timeof``, ``HMPI_Group_create``,
``group_repair``, checkpoint save/restore — with its virtual-time
extent, the rank that ran it, and attributes describing the decision
(candidates evaluated, cache hit or miss, survivors drafted).

Nesting follows the call stack: the simulator runs each rank as a
thread, so a thread-local stack of open spans gives correct parent/child
links without any cooperation from callers — a checkpoint restore opened
inside a repair becomes its child automatically.

The log is the runtime-side event bus: the Chrome-trace exporter
(:mod:`repro.obs.chrometrace`) merges it with the engine's per-rank
``Tracer`` events into one timeline.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "SpanLog"]


@dataclass
class Span:
    """One runtime operation: name, rank, virtual-time extent, attributes.

    ``attrs`` may be extended while the span is open (the ``span()``
    context manager yields the span object for exactly that); after close
    it should be treated as frozen.
    """

    name: str
    rank: int
    t0: float
    t1: float = 0.0
    span_id: int = 0
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name, "rank": self.rank,
            "t0": self.t0, "t1": self.t1,
            "span_id": self.span_id, "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


class SpanLog:
    """Collects completed :class:`Span` records, nested per rank-thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self.spans: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, rank: int, clock: Callable[[], float],
             **attrs: Any) -> Iterator[Span]:
        """Open a span around a block; ``clock`` supplies virtual time.

        The span is recorded even when the block raises (with an
        ``error`` attribute naming the exception type) — failed repairs
        and timed-out operations are precisely the events worth seeing.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        sp = Span(name=name, rank=rank, t0=clock(), span_id=span_id,
                  parent_id=parent, attrs=attrs)
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.attrs.setdefault("error", type(exc).__name__)
            raise
        finally:
            stack.pop()
            sp.t1 = clock()
            with self._lock:
                self.spans.append(sp)

    # -- queries --------------------------------------------------------
    def of_rank(self, rank: int) -> list[Span]:
        with self._lock:
            return sorted((s for s in self.spans if s.rank == rank),
                          key=lambda s: (s.t0, s.t1))

    def by_name(self, name: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span.span_id]

    def as_dicts(self) -> list[dict[str, Any]]:
        with self._lock:
            return [s.as_dict() for s in self.spans]

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)
