"""Launcher and environment behaviour."""

import pytest

from repro.cluster import uniform_network
from repro.mpi import run_mpi
from repro.mpi.launcher import default_placement
from repro.util.errors import MPIError


class TestDefaultPlacement:
    def test_one_per_machine(self):
        cluster = uniform_network([1.0, 2.0, 3.0])
        assert default_placement(cluster) == [0, 1, 2]

    def test_round_robin_overflow(self):
        cluster = uniform_network([1.0, 2.0])
        assert default_placement(cluster, 5) == [0, 1, 0, 1, 0]

    def test_fewer_than_machines(self):
        cluster = uniform_network([1.0, 2.0, 3.0])
        assert default_placement(cluster, 2) == [0, 1]

    def test_zero_rejected(self):
        with pytest.raises(MPIError):
            default_placement(uniform_network([1.0]), 0)


class TestRunMpi:
    def test_args_and_kwargs_forwarded(self, pair_cluster):
        def app(env, a, b=0):
            return (env.rank, a, b)

        res = run_mpi(app, pair_cluster, args=(7,), kwargs={"b": 9})
        assert res.results == [(0, 7, 9), (1, 7, 9)]

    def test_result_accessors(self, pair_cluster):
        def app(env):
            env.compute(10.0)
            return env.rank * 2

        res = run_mpi(app, pair_cluster)
        assert res.result_of(1) == 2
        assert not res.failed
        assert res.placement == [0, 1]
        assert res.makespan == max(res.finish_times)

    def test_invalid_placement_rejected(self, pair_cluster):
        def app(env):
            return None

        with pytest.raises(MPIError):
            run_mpi(app, pair_cluster, placement=[0, 7])

    def test_app_exception_propagates(self, pair_cluster):
        def app(env):
            if env.rank == 1:
                raise RuntimeError("boom in rank 1")
            return "ok"

        with pytest.raises(RuntimeError, match="boom in rank 1"):
            run_mpi(app, pair_cluster, timeout=10)

    def test_env_accessors(self, pair_cluster):
        def app(env):
            return (env.machine_index, env.machine.name,
                    env.cluster.size, list(env.placement))

        res = run_mpi(app, pair_cluster)
        assert res.results[1] == (1, "m01", 2, [0, 1])

    def test_single_rank_run(self):
        cluster = uniform_network([123.0])

        def app(env):
            env.compute(123.0)
            env.comm_world.barrier()
            return env.comm_world.allgather(env.rank)

        res = run_mpi(app, cluster)
        assert res.results == [[0]]
        assert res.makespan == pytest.approx(1.0)


class TestConcurrencyParameter:
    def test_explicit_concurrency_overrides_placement_count(self):
        cluster = uniform_network([100.0])

        def app(env):
            # Two ranks placed on the machine, but caller declares it has
            # the CPU to itself.
            env.compute(100.0, concurrency=1)
            return env.wtime()

        res = run_mpi(app, cluster, placement=[0, 0])
        assert res.results[0] == pytest.approx(1.0)

    def test_invalid_concurrency(self):
        cluster = uniform_network([100.0])

        def app(env):
            with pytest.raises(MPIError):
                env.compute(1.0, concurrency=0)
            return True

        res = run_mpi(app, cluster)
        assert res.results[0]
