"""Session facade: the one-stop import for HMPI programs.

:class:`HMPISession` is a context manager that owns a cluster and a set
of launch options (mapper, fault-tolerance knobs, engine backend,
observability) and runs HMPI applications against them::

    import repro
    from repro.hmpi import session

    with session(repro.cluster.paper_network(), mapper="greedy",
                 engine="events") as hmpi:
        result = hmpi.run(my_app)          # app(handle) per rank
        print(result.makespan)

Inside ``my_app`` the per-rank handle exposes the method-style API —
``handle.recon(...)``, ``handle.timeof(model)``,
``handle.group_create(model)``, ``handle.group_repair(gid, model)``,
``handle.group_free(gid)``, ``handle.is_host()`` … (see
:class:`repro.core.runtime.HMPI`).  The flat C-style ``HMPI_*`` spelling
from the paper's listings stays supported as thin delegates over those
methods and is re-exported here, so either style works from this single
module.  Options are validated eagerly at session creation (bad registry
strings raise :class:`~repro.util.errors.OptionError` and friends before
any rank runs) and every option can be overridden per ``run``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from .core.api import (  # noqa: F401  (re-exported: flat C-style API)
    HMPI_COMM_WORLD_GROUP,
    HMPI_Admit_machine,
    HMPI_Depart_machine,
    HMPI_Get_comm,
    HMPI_Group_create,
    HMPI_Group_free,
    HMPI_Group_rank,
    HMPI_Group_repair,
    HMPI_Group_size,
    HMPI_Is_free,
    HMPI_Is_host,
    HMPI_Is_member,
    HMPI_Recon,
    HMPI_Release_free,
    HMPI_Timeof,
    HMPI_Wtime,
)
from .core.runtime import HMPI, run_hmpi
from .core.seleng import TIMEOF_BACKENDS
from .mpi.launcher import MPIRunResult
from .mpi.scheduler import resolve_engine, resolve_ft
from .util.errors import OptionError
from .util.options import check_choice

__all__ = [
    "HMPISession",
    "session",
    "connect",
    "HMPI",
    "run_hmpi",
    # flat C-style API, re-exported for one-import convenience
    "HMPI_COMM_WORLD_GROUP",
    "HMPI_Recon",
    "HMPI_Timeof",
    "HMPI_Group_create",
    "HMPI_Group_repair",
    "HMPI_Group_free",
    "HMPI_Group_rank",
    "HMPI_Group_size",
    "HMPI_Get_comm",
    "HMPI_Is_host",
    "HMPI_Is_free",
    "HMPI_Is_member",
    "HMPI_Wtime",
    "HMPI_Release_free",
    "HMPI_Depart_machine",
    "HMPI_Admit_machine",
]

#: Options a session holds; exactly run_hmpi's keyword-only surface, so
#: `HMPISession(cluster, **opts)` and `run_hmpi(app, cluster, **opts)`
#: accept the same names (the uniform-option contract).
_SESSION_OPTIONS = (
    "placement", "nprocs", "mapper", "initial_speeds", "timeout",
    "tracer", "ft", "obs", "engine", "timeof_backend",
)


class HMPISession:
    """A reusable launch context for HMPI applications.

    Holds the cluster and the launch options; :meth:`run` executes an
    application under them, returning the
    :class:`~repro.mpi.launcher.MPIRunResult`.  Options given to ``run``
    override the session's for that run only.  The session validates
    registry-string options eagerly so a typo fails at construction, not
    mid-campaign.
    """

    def __init__(self, cluster: Any, **options: Any):
        self.cluster = cluster
        for key in options:
            if key not in _SESSION_OPTIONS:
                raise OptionError(
                    f"unknown session option {key!r}; "
                    f"expected one of {', '.join(_SESSION_OPTIONS)}"
                )
        # Fail fast on bad registry strings / malformed FT dicts.
        if "engine" in options:
            options["engine"] = resolve_engine(options["engine"])
        if "ft" in options:
            options["ft"] = resolve_ft(options["ft"])
        if options.get("timeof_backend") is not None:
            options["timeof_backend"] = check_choice(
                "timeof backend", options["timeof_backend"],
                TIMEOF_BACKENDS, OptionError,
            )
        self.options = options
        self.results: list[MPIRunResult] = []
        self._closed = False
        self._monitor = None

    # -- context management -------------------------------------------
    def __enter__(self) -> "HMPISession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Mark the session closed; further ``run`` calls are an error."""
        if self._monitor is not None:
            self._monitor.stop()
            self._monitor = None
        self._closed = True

    # -- monitoring ------------------------------------------------------
    def monitor(self, host: str = "127.0.0.1", port: int = 0):
        """Serve this session's observability over HTTP; returns the server.

        Ensures the session carries an :class:`~repro.obs.Observability`
        with a telemetry bus (creating one if the ``obs`` option is
        unset) so subsequent :meth:`run` calls feed ``/metrics``,
        ``/snapshot`` and ``/events``.  The server is stopped by
        :meth:`close`, or earlier via the returned handle's ``stop()``.
        """
        from .obs import EventBus, MonitorServer, Observability

        if self._closed:
            raise OptionError("session is closed")
        if self._monitor is not None:
            return self._monitor
        obs = self.options.get("obs")
        if obs is None:
            obs = Observability(telemetry=True)
            self.options["obs"] = obs
        elif obs.telemetry is None:
            obs.telemetry = EventBus()
        self._monitor = MonitorServer(
            metrics=obs.metrics, telemetry=obs.telemetry,
            snapshot_fn=obs.snapshot, host=host, port=port,
        ).start()
        return self._monitor

    # -- running -------------------------------------------------------
    def run(
        self,
        app: Callable[..., Any],
        *,
        args: tuple = (),
        kwargs: dict | None = None,
        **overrides: Any,
    ) -> MPIRunResult:
        """Run ``app(handle, *args, **kwargs)`` SPMD under this session.

        ``overrides`` accepts any session option (``mapper=``, ``ft=``,
        ``engine=``, ...) for this run only.  The result is returned and
        appended to :attr:`results`.
        """
        if self._closed:
            raise OptionError("session is closed")
        for key in overrides:
            if key not in _SESSION_OPTIONS:
                raise OptionError(
                    f"unknown run option {key!r}; "
                    f"expected one of {', '.join(_SESSION_OPTIONS)}"
                )
        opts = {**self.options, **overrides}
        placement: Sequence[int] | None = opts.pop("placement", None)
        result = run_hmpi(app, self.cluster, placement,
                          args=args, kwargs=kwargs, **opts)
        self.results.append(result)
        return result

    @property
    def last_result(self) -> MPIRunResult | None:
        return self.results[-1] if self.results else None


def session(cluster: Any, **options: Any) -> HMPISession:
    """Open an :class:`HMPISession` (readable spelling for ``with`` use)."""
    return HMPISession(cluster, **options)


def connect(url: str, *, tenant: str = "anonymous", timeout: float = 60.0):
    """Open a client for a running ``repro serve`` endpoint.

    The served counterpart of :func:`session`: instead of owning a
    cluster in-process, predictions and selections are answered by a job
    server — bitwise-identical to the local calls (docs/SERVING.md)::

        client = connect("http://127.0.0.1:8080", tenant="team-a")
        t = client.timeof(MODEL_SOURCE, params={...}, cluster="paper")
    """
    from .serve.client import ServeClient

    return ServeClient(url, tenant=tenant, timeout=timeout)
