"""Structured campaign results: JSONL rows + a summary JSON.

Every run of a campaign produces exactly one **result row** — a JSON
object with a fixed, versioned field set (:data:`RESULT_FIELDS`,
:data:`SCHEMA_VERSION`) — appended to ``results.jsonl`` in canonical
form (sorted keys, compact separators).  Because every quantity a driver
reports is a *virtual-time* or selection-level measurement, rows are
bitwise reproducible: the same config and seed produce the identical
byte stream, which the property tests and the golden-file test assert.

The companion ``summary.json`` aggregates the rows (counts, per-cell
metrics) and stamps the schema version plus a digest of the expanded
config, so a regression baseline can later verify it is being compared
against the campaign it was recorded from.

**Schema evolution contract:** adding, removing, or renaming a field in
:data:`RESULT_FIELDS` or :data:`SUMMARY_FIELDS` MUST bump
:data:`SCHEMA_VERSION`.  ``tests/campaign/test_golden.py`` keeps a
fingerprint of the field sets per version and fails loudly when the
fields change under an unbumped version.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any

from ..util.errors import CampaignError

__all__ = [
    "SCHEMA_VERSION",
    "RESULT_FIELDS",
    "SUMMARY_FIELDS",
    "canonical_json",
    "ResultsWriter",
    "read_rows",
]

#: Version of the result-row and summary schemas (see module docstring).
SCHEMA_VERSION = 1

#: Exact field set of one result row, in canonical (sorted) order.
#: ``cell`` identifies the run (axis name -> value), ``metrics`` holds the
#: driver's deterministic measurements, ``error`` is None unless
#: ``status == "error"`` (then it names the typed failure).
RESULT_FIELDS = ("cell", "error", "metrics", "run", "schema", "seed", "status")

#: Exact field set of the summary document.
SUMMARY_FIELDS = ("cells", "config_digest", "errors", "name", "ok", "runs",
                  "schema_version")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_digest(config_dict: dict) -> str:
    """Stable digest of a campaign config (identifies what was swept)."""
    return hashlib.sha256(canonical_json(config_dict).encode()).hexdigest()


class ResultsWriter:
    """Collects result rows; writes canonical JSONL and a summary JSON.

    Use in-memory (``out_dir=None``) for tests, or with a directory to
    stream ``results.jsonl`` as runs complete (a crashed campaign leaves
    the completed rows behind).
    """

    def __init__(self, out_dir: "str | pathlib.Path | None" = None):
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None else None
        self.rows: list[dict] = []
        self._fh = None
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.out_dir / "results.jsonl", "w")

    # ------------------------------------------------------------------
    def add(
        self,
        run: int,
        seed: int,
        cell: dict,
        metrics: dict,
        status: str = "ok",
        error: "str | None" = None,
    ) -> dict:
        """Append one result row (validated against the schema)."""
        row = {
            "schema": SCHEMA_VERSION,
            "run": run,
            "seed": seed,
            "cell": cell,
            "status": status,
            "metrics": metrics,
            "error": error,
        }
        if tuple(sorted(row)) != RESULT_FIELDS:
            raise CampaignError(
                f"result row fields {sorted(row)} do not match schema "
                f"v{SCHEMA_VERSION} fields {list(RESULT_FIELDS)}"
            )
        if status not in ("ok", "error"):
            raise CampaignError(f"unknown result status {status!r}")
        if (error is not None) != (status == "error"):
            raise CampaignError(
                "error text is required exactly when status == 'error'"
            )
        self.rows.append(row)
        if self._fh is not None:
            self._fh.write(canonical_json(row) + "\n")
            self._fh.flush()
        return row

    # ------------------------------------------------------------------
    def summary(self, name: str, config_dict: dict) -> dict:
        """Aggregate the collected rows into the summary document."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": name,
            "config_digest": config_digest(config_dict),
            "runs": len(self.rows),
            "ok": sum(1 for r in self.rows if r["status"] == "ok"),
            "errors": sum(1 for r in self.rows if r["status"] == "error"),
            "cells": [
                {"cell": r["cell"], "status": r["status"],
                 "metrics": r["metrics"]}
                for r in self.rows
            ],
        }

    def finish(self, name: str, config_dict: dict) -> dict:
        """Close the JSONL stream and (when writing) emit summary.json."""
        summary = self.summary(name, config_dict)
        if tuple(sorted(summary)) != SUMMARY_FIELDS:
            raise CampaignError(
                f"summary fields {sorted(summary)} do not match schema "
                f"v{SCHEMA_VERSION} fields {list(SUMMARY_FIELDS)}"
            )
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if self.out_dir is not None:
            with open(self.out_dir / "summary.json", "w") as fh:
                json.dump(summary, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return summary

    # ------------------------------------------------------------------
    def jsonl(self) -> str:
        """The canonical JSONL byte-for-byte content of the rows."""
        return "".join(canonical_json(r) + "\n" for r in self.rows)


def read_rows(path: "str | pathlib.Path") -> list[dict]:
    """Read result rows from a ``results.jsonl`` file (or its directory).

    Rows from a newer schema than this library understands are rejected
    loudly rather than misinterpreted.
    """
    p = pathlib.Path(path)
    if p.is_dir():
        p = p / "results.jsonl"
    if not p.exists():
        raise CampaignError(f"no results file at {p}")
    rows = []
    for i, line in enumerate(p.read_text().splitlines()):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{p}:{i + 1}: not valid JSON: {exc}") from exc
        if row.get("schema") != SCHEMA_VERSION:
            raise CampaignError(
                f"{p}:{i + 1}: result schema v{row.get('schema')} != "
                f"supported v{SCHEMA_VERSION}"
            )
        rows.append(row)
    return rows
