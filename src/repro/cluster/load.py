"""External-load models for multi-user machines.

The paper's third HNOC challenge is that machines are *multi-user and
decentralized*: the speed a parallel application actually obtains from a
workstation varies with whatever else its owner is running.  A load model
captures that as a piecewise-constant **CPU share** in ``(0, 1]`` as a
function of virtual time: share 1.0 means the machine is fully ours, share
0.25 means external jobs take three quarters of it.

All models are piecewise-constant so that compute-time integration (in
:mod:`repro.cluster.machine`) is exact: a model exposes ``share_at(t)`` and
``next_change_after(t)``, and the integrator walks the change points.
Stochastic models are deterministic functions of their seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from bisect import bisect_right
from collections.abc import Sequence

from ..util.rng import make_rng
from ..util.validate import check_positive

__all__ = [
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "SquareWaveLoad",
    "RandomWalkLoad",
    "DiurnalLoad",
    "DIURNAL_PROFILE",
    "NO_LOAD",
]

_MIN_SHARE = 1e-6


class LoadModel(ABC):
    """Piecewise-constant CPU-share profile over virtual time."""

    @abstractmethod
    def share_at(self, t: float) -> float:
        """CPU share available to the application at virtual time ``t``."""

    @abstractmethod
    def next_change_after(self, t: float) -> float:
        """First virtual time strictly after ``t`` where the share changes.

        Returns ``math.inf`` if the share is constant from ``t`` on.
        """

    def mean_share(self, t0: float, t1: float) -> float:
        """Time-average of the share over ``[t0, t1]`` (exact for p.w.c.)."""
        if t1 <= t0:
            return self.share_at(t0)
        total = 0.0
        t = t0
        while t < t1:
            nxt = min(self.next_change_after(t), t1)
            total += self.share_at(t) * (nxt - t)
            t = nxt
        return total / (t1 - t0)


class ConstantLoad(LoadModel):
    """A fixed CPU share — the default (share=1.0) models a dedicated machine."""

    def __init__(self, share: float = 1.0):
        if not 0.0 < share <= 1.0:
            raise ValueError(f"share must be in (0, 1], got {share}")
        self.share = share

    def share_at(self, t: float) -> float:
        return self.share

    def next_change_after(self, t: float) -> float:
        return math.inf

    def __repr__(self) -> str:
        return f"ConstantLoad({self.share})"


NO_LOAD = ConstantLoad(1.0)


class StepLoad(LoadModel):
    """An explicit schedule ``[(t0, share0), (t1, share1), ...]``.

    The share before the first breakpoint is ``initial`` (default 1.0).
    Breakpoints must be strictly increasing.
    """

    def __init__(self, steps: Sequence[tuple[float, float]], initial: float = 1.0):
        times = [t for t, _ in steps]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("StepLoad breakpoints must be strictly increasing")
        for _, s in steps:
            if not 0.0 < s <= 1.0:
                raise ValueError(f"share must be in (0, 1], got {s}")
        if not 0.0 < initial <= 1.0:
            raise ValueError(f"initial share must be in (0, 1], got {initial}")
        self._times = list(times)
        self._shares = [s for _, s in steps]
        self._initial = initial

    def share_at(self, t: float) -> float:
        i = bisect_right(self._times, t)
        return self._initial if i == 0 else self._shares[i - 1]

    def next_change_after(self, t: float) -> float:
        i = bisect_right(self._times, t)
        return self._times[i] if i < len(self._times) else math.inf


class SquareWaveLoad(LoadModel):
    """Alternates between ``high`` and ``low`` share with a fixed period.

    Models a periodic external job (e.g. a nightly build or a user who works
    in bursts).  The first half-period has share ``high``.
    """

    def __init__(self, period: float, high: float = 1.0, low: float = 0.5, phase: float = 0.0):
        check_positive(period, "period")
        for name, s in (("high", high), ("low", low)):
            if not 0.0 < s <= 1.0:
                raise ValueError(f"{name} share must be in (0, 1], got {s}")
        self.period = period
        self.high = high
        self.low = low
        self.phase = phase

    def _half_index(self, t: float) -> int:
        return int(math.floor(2.0 * (t + self.phase) / self.period))

    def share_at(self, t: float) -> float:
        return self.high if self._half_index(t) % 2 == 0 else self.low

    def next_change_after(self, t: float) -> float:
        half = self.period / 2.0
        k = self._half_index(t) + 1
        boundary = k * half - self.phase
        # Guard against t sitting exactly on a boundary due to float fuzz.
        while boundary <= t:
            k += 1
            boundary = k * half - self.phase
        return boundary


class RandomWalkLoad(LoadModel):
    """Share follows a bounded random walk, re-drawn every ``interval``.

    Deterministic given ``seed``: segment ``k`` covers
    ``[k*interval, (k+1)*interval)`` and its share is produced by a lazily
    extended walk.  The walk starts at ``start`` and each step adds a uniform
    draw in ``[-step, step]``, clamped to ``[floor, 1.0]``.
    """

    def __init__(
        self,
        interval: float,
        seed: int,
        start: float = 1.0,
        step: float = 0.2,
        floor: float = 0.05,
    ):
        check_positive(interval, "interval")
        if not 0.0 < start <= 1.0:
            raise ValueError(f"start share must be in (0, 1], got {start}")
        if not 0.0 < floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {floor}")
        self.interval = interval
        self.step = step
        self.floor = floor
        self._rng = make_rng(seed)
        self._shares = [start]

    def _extend_to(self, k: int) -> None:
        while len(self._shares) <= k:
            prev = self._shares[-1]
            delta = float(self._rng.uniform(-self.step, self.step))
            self._shares.append(min(1.0, max(self.floor, prev + delta)))

    def share_at(self, t: float) -> float:
        k = max(0, int(math.floor(t / self.interval)))
        self._extend_to(k)
        return max(_MIN_SHARE, self._shares[k])

    def next_change_after(self, t: float) -> float:
        k = max(0, int(math.floor(t / self.interval)))
        boundary = (k + 1) * self.interval
        while boundary <= t:
            k += 1
            boundary = (k + 1) * self.interval
        return boundary


#: Default diurnal profile: fraction-of-day -> share.  Nearly idle
#: workstations overnight, contended through office hours, easing off in
#: the evening — the classic shape of the paper's multi-user HNOC.
DIURNAL_PROFILE = (
    (0.0, 0.95),        # 00:00  overnight, machine almost dedicated
    (1.0 / 3.0, 0.40),  # 08:00  owners arrive
    (0.5, 0.25),        # 12:00  peak interactive load
    (0.75, 0.55),       # 18:00  evening tail
    (11.0 / 12.0, 0.85),  # 22:00  winding down
)


class DiurnalLoad(LoadModel):
    """A daily cycle of external load (the multi-user workstation day).

    ``profile`` maps fractions of the day (in ``[0, 1)``, first entry
    must be 0.0 so the whole cycle is covered) to CPU shares; the share
    holds until the next breakpoint and the profile repeats every
    ``day`` virtual-time units.  ``phase`` shifts where in the day
    ``t=0`` falls (``phase=0.5`` starts a run at noon).

    Piecewise-constant like every load model, so compute-time
    integration stays exact, and purely deterministic — a natural demo
    workload for live campaign ETAs, where the same cell is reproducible
    but runs predictably slower at simulated midday.
    """

    def __init__(self, day: float = 24.0,
                 profile: Sequence[tuple[float, float]] = DIURNAL_PROFILE,
                 phase: float = 0.0):
        check_positive(day, "day")
        profile = [(float(f), float(s)) for f, s in profile]
        if not profile or profile[0][0] != 0.0:
            raise ValueError(
                "diurnal profile must start at day-fraction 0.0")
        fracs = [f for f, _ in profile]
        if any(b <= a for a, b in zip(fracs, fracs[1:])) or fracs[-1] >= 1.0:
            raise ValueError(
                "diurnal profile fractions must be strictly increasing "
                "and < 1.0")
        for _, s in profile:
            if not 0.0 < s <= 1.0:
                raise ValueError(f"share must be in (0, 1], got {s}")
        self.day = float(day)
        self.phase = float(phase)
        self._fracs = fracs
        self._shares = [s for _, s in profile]

    def _day_fraction(self, t: float) -> float:
        frac = (t / self.day + self.phase) % 1.0
        # Snap onto the breakpoint lattice: for t exactly on a boundary,
        # t/day can land an ulp *below* the stored fraction and misfile
        # the query into the previous segment.
        i = bisect_right(self._fracs, frac)
        if i < len(self._fracs) and self._fracs[i] - frac < 1e-9:
            frac = self._fracs[i]
        return frac

    def share_at(self, t: float) -> float:
        i = bisect_right(self._fracs, self._day_fraction(t))
        # i >= 1 always: the profile starts at 0.0 and fractions are >= 0.
        return self._shares[i - 1]

    def next_change_after(self, t: float) -> float:
        if len(self._fracs) == 1:
            return math.inf  # single segment: the share never changes
        pos = t / self.day + self.phase  # absolute position, in days
        day_idx = math.floor(pos)
        i = bisect_right(self._fracs, pos - day_idx)
        while True:
            if i >= len(self._fracs):
                day_idx += 1
                i = 0
            boundary = (day_idx + self._fracs[i] - self.phase) * self.day
            if boundary > t:  # strict: skip float-fuzz landings at t
                return boundary
            i += 1

    def __repr__(self) -> str:
        return (f"DiurnalLoad(day={self.day}, phase={self.phase}, "
                f"{len(self._fracs)} breakpoints)")
