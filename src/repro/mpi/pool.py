"""Master-worker task pool over the substrate (mpi4py.futures style).

Dynamic load balancing is the other classic answer to heterogeneity: keep
the work in a bag and let fast machines come back for more.  A
:class:`WorkerPool` runs the master on rank 0 of its communicator and a
worker loop everywhere else; ``map`` hands out tasks one at a time to
whichever worker returns first (wildcard receive), so machine speeds are
balanced automatically without a performance model.

This gives the repository a measured counterpoint to HMPI's *static*
model-driven balancing — see ``tests/integration/test_pool_vs_hmpi.py``:
dynamic balancing approaches the same makespan on divisible bags of equal
tasks but pays per-task latency, while HMPI needs the model but no
round trips.

Task *cost* is modelled explicitly: each task carries the benchmark-unit
volume the worker charges (plus optional payload bytes), because the pool
runs inside the virtual-time simulation like everything else.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Any

from ..util.errors import MPIError
from .communicator import Comm
from .status import ANY_SOURCE, Status

__all__ = ["Task", "WorkerPool", "run_task_pool"]

_TAG_TASK = 101
_TAG_RESULT = 102



class Task:
    """One unit of bag-of-tasks work.

    ``volume`` is charged to the executing worker's machine; ``payload``
    travels with the task (its real/declared size hits the link);
    ``fn(payload)`` computes the (picklable) result.
    """

    __slots__ = ("volume", "payload", "fn", "nbytes")

    def __init__(self, volume: float, payload: Any = None,
                 fn: Callable[[Any], Any] | None = None,
                 nbytes: int | None = None):
        if volume < 0:
            raise MPIError("task volume must be >= 0")
        self.volume = volume
        self.payload = payload
        self.fn = fn
        self.nbytes = nbytes


class WorkerPool:
    """The per-rank handle: master dispatches, workers loop."""

    def __init__(self, comm: Comm, compute: Callable[[float], float]):
        if comm.size < 2:
            raise MPIError("a worker pool needs at least one worker")
        self.comm = comm
        self.compute = compute

    @property
    def is_master(self) -> bool:
        return self.comm.rank == 0

    # ------------------------------------------------------------------
    # master side
    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[Task]) -> list[Any]:
        """Dispatch every task; returns results in task order (master only).

        Greedy self-scheduling: each worker gets one task, then a fresh
        task whenever it returns a result, until the bag is empty; workers
        are then stopped.
        """
        if not self.is_master:
            raise MPIError("map() may only be called on the master rank")
        comm = self.comm
        nworkers = comm.size - 1
        results: list[Any] = [None] * len(tasks)
        next_task = 0
        in_flight = 0

        def dispatch(worker: int) -> bool:
            nonlocal next_task, in_flight
            if next_task >= len(tasks):
                return False
            task = tasks[next_task]
            comm.send((next_task, task.volume, task.payload, task.fn),
                      worker, tag=_TAG_TASK, nbytes=task.nbytes)
            next_task += 1
            in_flight += 1
            return True

        for worker in range(1, min(nworkers, len(tasks)) + 1):
            dispatch(worker)
        # Under the preemptive thread backend, give worker threads a
        # real-time window to enqueue their results, so the wildcard
        # receive's minimum-virtual-arrival matching services the worker
        # that *virtually* finished first rather than whichever thread
        # the OS happened to schedule.  The event backend orders ranks by
        # virtual time already — no real-time aid needed (or wanted: it
        # would cost 12ms per 40-task bag for nothing).
        fidelity_sleep = not getattr(comm._engine, "deterministic", False)
        while in_flight > 0:
            if fidelity_sleep:
                time.sleep(0.0003)
            status = Status()
            index, value = comm.recv(ANY_SOURCE, _TAG_RESULT, status=status)
            results[index] = value
            in_flight -= 1
            dispatch(status.source)
        # A None sentinel on the task tag stops each worker; per-pair FIFO
        # guarantees it arrives after any task sent to that worker.
        for worker in range(1, nworkers + 1):
            comm.send(None, worker, tag=_TAG_TASK)
        return results

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def worker_loop(self) -> int:
        """Serve tasks until the stop sentinel; returns the number executed."""
        if self.is_master:
            raise MPIError("worker_loop() may only run on worker ranks")
        comm = self.comm
        served = 0
        while True:
            envelope = comm.recv(0, _TAG_TASK)
            if envelope is None:
                return served
            index, volume, payload, fn = envelope
            self.compute(volume)
            result = fn(payload) if fn is not None else payload
            comm.send((index, result), 0, tag=_TAG_RESULT)
            served += 1


def run_task_pool(env, tasks: Sequence[Task]) -> list[Any] | int:
    """Convenience SPMD entry: master maps, workers loop.

    Returns the result list on rank 0 and the served-task count elsewhere.
    """
    pool = WorkerPool(env.comm_world, env.compute)
    if pool.is_master:
        return pool.map(list(tasks))
    return pool.worker_loop()
