"""The compiled Em3d model (paper Figure 4) exposes the right volumes."""

import numpy as np
import pytest

from repro.apps.em3d.model import em3d_model
from repro.perfmodel.model import LinearActionVisitor
from repro.util.errors import PMDLSemanticError


class Recorder(LinearActionVisitor):
    def __init__(self):
        self.computes = {}
        self.transfers = {}

    def compute(self, percent, proc):
        self.computes[proc] = self.computes.get(proc, 0.0) + percent

    def transfer(self, percent, src, dst):
        key = (src, dst)
        self.transfers[key] = self.transfers.get(key, 0.0) + percent


@pytest.fixture
def bound():
    d = [300, 200, 100]
    dep = [[0, 10, 5], [10, 0, 0], [5, 0, 0]]
    return em3d_model().bind(3, 100, d, dep)


class TestGeometry:
    def test_nproc_and_parent(self, bound):
        assert bound.nproc == 3
        assert bound.parent_index() == 0

    def test_linear_index_roundtrip(self, bound):
        for i in range(3):
            assert bound.linear_index(bound.coords_of(i)) == i


class TestVolumes:
    def test_node_volumes_are_d_over_k(self, bound):
        assert bound.node_volumes() == pytest.approx([3.0, 2.0, 1.0])

    def test_link_volumes_dep_times_sizeof_double(self, bound):
        links = bound.link_volumes()
        # dep[I][L] values travel L -> I at 8 bytes each
        assert links[1, 0] == 80.0   # dep[0][1] = 10
        assert links[2, 0] == 40.0   # dep[0][2] = 5
        assert links[0, 1] == 80.0   # dep[1][0] = 10
        assert links[0, 2] == 40.0
        assert links[1, 2] == 0.0 and links[2, 1] == 0.0
        assert np.diag(links).sum() == 0.0


class TestScheme:
    def test_percentages_sum_to_100(self, bound):
        rec = Recorder()
        bound.walk_scheme(rec)
        assert rec.computes == {0: 100.0, 1: 100.0, 2: 100.0}
        # Exactly the nonzero link pairs transfer, each at 100%.
        links = bound.link_volumes()
        expected_pairs = {(s, d) for s in range(3) for d in range(3)
                          if links[s, d] > 0}
        assert set(rec.transfers) == expected_pairs
        assert all(v == 100.0 for v in rec.transfers.values())

    def test_transfers_precede_computes(self, bound):
        events = []

        class OrderRecorder(LinearActionVisitor):
            def compute(self, percent, proc):
                events.append("C")

            def transfer(self, percent, src, dst):
                events.append("T")

        bound.walk_scheme(OrderRecorder())
        # one round: all transfers first, then all computes
        switch = events.index("C")
        assert all(e == "T" for e in events[:switch])
        assert all(e == "C" for e in events[switch:])


class TestBinding:
    def test_wrong_dim_rejected(self):
        with pytest.raises(PMDLSemanticError):
            em3d_model().bind(3, 100, [1, 2], [[0] * 3] * 3)

    def test_wrong_matrix_shape_rejected(self):
        with pytest.raises(PMDLSemanticError):
            em3d_model().bind(3, 100, [1, 2, 3], [[0] * 2] * 3)

    def test_missing_parameter(self):
        with pytest.raises(PMDLSemanticError, match="missing"):
            em3d_model().bind(3, 100)

    def test_keyword_binding(self):
        bm = em3d_model().bind(2, 10, d=[10, 20], dep=[[0, 1], [1, 0]])
        assert bm.node_volumes() == pytest.approx([1.0, 2.0])

    def test_duplicate_keyword(self):
        with pytest.raises(PMDLSemanticError, match="twice"):
            em3d_model().bind(2, 10, [1, 2], p=2)
