"""The differential fault-injection campaign.

Every seeded fault schedule must terminate in bounded virtual time with
either a successful repair whose numerical result is bitwise identical to
a fault-free run, or a typed error — never a hang, never a silently wrong
answer.  The fast sweep runs on every push; the seed/rate sweeps are
marked ``slow`` and run as a separate CI job.
"""

import numpy as np
import pytest

from repro.cluster import TransientFaultConfig
from repro.mpi import FTConfig

from .campaign import (
    FAST_SCENARIOS,
    N,
    NITER,
    Scenario,
    assert_outcome,
    reference_grid,
    run_scenario,
)


@pytest.fixture(scope="module")
def ref():
    return reference_grid()


class TestFastSweep:
    @pytest.mark.parametrize("sc", FAST_SCENARIOS, ids=lambda s: s.name)
    def test_scenario(self, sc, ref):
        assert_outcome(sc, run_scenario(sc), ref)

    def test_recovery_scenarios_actually_repair(self, ref):
        sc = Scenario("death-mid-check", deaths={2: 0.04})
        res = run_scenario(sc)
        assert res.repairs >= 1
        assert res.checkpoint_restores > 0
        assert 2 in res.dead_ranks
        assert 2 not in res.final_world_ranks

    def test_equals_fault_free_rerun_on_surviving_subset(self, ref):
        """The campaign's differential core, spelled out: the repaired
        result equals a fault-free run confined to the survivors."""
        faulty = run_scenario(Scenario("death-mid", deaths={2: 0.04}))
        assert faulty.grid is not None
        survivors = Scenario("survivors-only", speeds=[100.0] * 3)
        clean = run_scenario(survivors)
        assert np.array_equal(faulty.grid, clean.grid)
        assert np.array_equal(faulty.grid, ref)

    def test_host_death_is_typed_everywhere(self):
        res = run_scenario(Scenario("host-death", deaths={0: 0.03},
                                    must_recover=False))
        assert res.grid is None
        assert res.error


class TestDeterminism:
    def test_same_schedule_same_result(self, ref):
        """Thread interleaving must not leak into the numerics: two runs
        of one schedule agree bitwise and on the dead set."""
        sc = Scenario("death-early", deaths={2: 0.005})
        a, b = run_scenario(sc), run_scenario(sc)
        assert a.grid is not None and b.grid is not None
        assert np.array_equal(a.grid, b.grid)
        assert a.dead_ranks == b.dead_ranks
        assert np.array_equal(a.grid, ref)

    def test_transient_schedule_is_seed_deterministic(self):
        cfg = TransientFaultConfig(drop_prob=0.4, delay_prob=0.2, delay=1e-3)
        sc = Scenario("transient-det", transient=cfg, transient_seed=7)
        a, b = run_scenario(sc), run_scenario(sc)
        assert a.grid is not None
        assert np.array_equal(a.grid, b.grid)
        assert a.makespan == b.makespan

    def test_transient_drops_cost_time(self):
        """Masked drops are invisible in the numerics but not the clock."""
        clean = run_scenario(Scenario("control"))
        # drop_prob**max_retries must stay far below 1/#messages so the
        # retransmission layer masks every drop (~300 messages here).
        faulty = run_scenario(Scenario(
            "transient-heavy",
            transient=TransientFaultConfig(drop_prob=0.3),
            ft=FTConfig(max_retries=12, retry_timeout=2e-3),
        ))
        assert np.array_equal(clean.grid, faulty.grid)
        assert faulty.makespan > clean.makespan


@pytest.mark.slow
class TestFullCampaign:
    """Seed and fault-rate sweeps — the long tail of schedules."""

    def test_death_time_sweep(self, ref):
        for i in range(16):
            t = 1e-4 + i * 0.007
            sc = Scenario(f"death@{t:.4f}", deaths={2: t})
            assert_outcome(sc, run_scenario(sc), ref)

    def test_two_death_grid(self, ref):
        for t1 in (0.005, 0.03, 0.06):
            for t2 in (0.005, 0.03, 0.06):
                sc = Scenario(
                    f"deaths@{t1}/{t2}", speeds=[100.0] * 5,
                    deaths={1: t1, 3: t2},
                )
                assert_outcome(sc, run_scenario(sc), ref)

    def test_transient_seed_sweep(self, ref):
        cfg = TransientFaultConfig(drop_prob=0.35, delay_prob=0.25,
                                   delay=8e-4)
        for seed in range(8):
            sc = Scenario(f"transient-seed{seed}", transient=cfg,
                          transient_seed=seed)
            assert_outcome(sc, run_scenario(sc), ref)

    def test_transient_plus_death_seed_sweep(self, ref):
        cfg = TransientFaultConfig(drop_prob=0.25)
        for seed in range(4):
            for t in (0.01, 0.05):
                sc = Scenario(
                    f"mixed-seed{seed}@{t}", speeds=[100.0] * 5,
                    deaths={2: t}, transient=cfg, transient_seed=seed,
                )
                assert_outcome(sc, run_scenario(sc), ref)

    def test_heterogeneous_speeds(self, ref):
        sc = Scenario("hetero-death", speeds=[100.0, 50.0, 200.0, 25.0],
                      deaths={2: 0.02})
        assert_outcome(sc, run_scenario(sc), ref)

    def test_unmaskable_link_fault_still_terminates(self, ref):
        """A link so broken retransmission gives up: the LinkFaultError
        surfaces as a typed outcome or the run recovers — never a hang."""
        sc = Scenario(
            "link-dead-window",
            transient=TransientFaultConfig(drop_prob=1.0, stop=0.01),
            ft=FTConfig(max_retries=3, retry_timeout=1e-3),
            must_recover=False,
        )
        assert_outcome(sc, run_scenario(sc), ref)
