"""Datatypes and payload encoding."""

import numpy as np
import pytest

from repro.mpi.datatypes import (
    BYTE,
    DOUBLE,
    INT,
    decode_payload,
    encode_payload,
    sizeof,
)


class TestDatatype:
    def test_sizes(self):
        assert DOUBLE.size == 8
        assert INT.size == 4
        assert BYTE.size == 1

    def test_multiplication_gives_bytes(self):
        assert DOUBLE * 10 == 80
        assert 10 * INT == 40


class TestSizeof:
    def test_datatype_objects(self):
        assert sizeof(DOUBLE) == 8

    @pytest.mark.parametrize("name,size", [
        ("double", 8), ("float", 4), ("int", 4), ("long", 8),
        ("char", 1), ("byte", 1), ("short", 2), ("DOUBLE", 8),
    ])
    def test_c_names(self, name, size):
        assert sizeof(name) == size

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            sizeof("quaternion")


class TestEncodePayload:
    def test_ndarray_sized_by_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        payload, nbytes = encode_payload(arr)
        assert nbytes == 800
        assert (decode_payload(payload) == arr).all()

    def test_ndarray_copied_at_send(self):
        arr = np.arange(4.0)
        payload, _ = encode_payload(arr)
        arr[0] = 999.0  # sender reuses its buffer
        assert decode_payload(payload)[0] == 0.0

    def test_object_roundtrip(self):
        obj = {"a": [1, 2, 3], "b": (4.5, "x")}
        payload, nbytes = encode_payload(obj)
        assert nbytes > 0
        assert decode_payload(payload) == obj

    def test_object_isolation(self):
        obj = {"key": [1]}
        payload, _ = encode_payload(obj)
        obj["key"].append(2)
        assert decode_payload(payload) == {"key": [1]}

    def test_nbytes_override(self):
        _, nbytes = encode_payload("tiny", nbytes=10_000)
        assert nbytes == 10_000

    def test_none_payload(self):
        payload, nbytes = encode_payload(None)
        assert decode_payload(payload) is None
        assert nbytes > 0
