"""Execute a campaign: every cell through its driver, into results.

The runner is deliberately dumb: expansion and seeding live in
:mod:`repro.campaign.config`, scenario construction in the drivers.  It
walks the expanded runs in order, gives each its own
``np.random.default_rng(spec.seed)`` stream, and records one result row
per run.  A run that ends in a typed library error
(:class:`~repro.util.errors.ReproError`) becomes a ``status="error"``
row naming the exception — the campaign completes with a typed result
for every cell, never a crash half-way through the sweep.

Live progress goes to the **telemetry side channel** only: pass an
:class:`~repro.obs.telemetry.EventBus` and the runner streams
``campaign.start`` / ``cell.start`` / ``cell.finish`` (with per-cell
wall time, done/total counts and an ETA extrapolated from completed
cells) / ``campaign.finish`` events.  Wall-clock data never enters the
:class:`ResultsWriter` — result rows stay a pure function of
``(config, seed)``, bitwise-reproducible with or without a monitor
attached.
"""

from __future__ import annotations

import time

import numpy as np

from ..util.errors import ReproError
from .config import CampaignConfig, RunSpec
from .drivers import resolve_driver
from .results import ResultsWriter

__all__ = ["run_campaign", "run_one"]


def run_one(config: CampaignConfig, spec: RunSpec) -> dict:
    """Execute a single expanded run; returns the driver's metrics dict."""
    driver = resolve_driver(config.driver)
    rng = np.random.default_rng(spec.seed)
    return driver.run(spec.params, rng)


def run_campaign(
    config: CampaignConfig,
    out_dir=None,
    *,
    progress=None,
    telemetry=None,
) -> ResultsWriter:
    """Run every cell of ``config``; returns the filled ResultsWriter.

    ``progress`` is an optional callable ``(spec, row)`` invoked after
    each run (the CLI uses it to print one line per cell).
    ``telemetry`` is an optional :class:`~repro.obs.telemetry.EventBus`
    receiving campaign progress events (see module docstring); it never
    influences the written results.
    """
    writer = ResultsWriter(out_dir)
    specs = config.expand()
    total = len(specs)
    if telemetry is not None:
        telemetry.emit("campaign", "start", campaign=config.name,
                       driver=resolve_driver(config.driver).name,
                       total=total)
    done = 0
    errors = 0
    cell_walls: list[float] = []
    for spec in specs:
        if telemetry is not None:
            telemetry.emit("campaign", "cell.start", index=spec.index,
                           seed=spec.seed, cell=spec.cell,
                           done=done, total=total)
        t0 = time.perf_counter()
        try:
            metrics = run_one(config, spec)
            row = writer.add(spec.index, spec.seed, spec.cell, metrics)
        except ReproError as exc:
            row = writer.add(
                spec.index, spec.seed, spec.cell, {},
                status="error", error=f"{type(exc).__name__}: {exc}",
            )
        wall = time.perf_counter() - t0
        done += 1
        if row["status"] != "ok":
            errors += 1
        if telemetry is not None:
            cell_walls.append(wall)
            remaining = total - done
            eta = remaining * (sum(cell_walls) / len(cell_walls))
            telemetry.emit("campaign", "cell.finish", index=spec.index,
                           seed=spec.seed, cell=spec.cell,
                           status=row["status"], wall_seconds=wall,
                           done=done, total=total, eta_seconds=eta)
        if progress is not None:
            progress(spec, row)
    writer.finish(config.name, config.to_dict())
    if telemetry is not None:
        telemetry.emit("campaign", "finish", campaign=config.name,
                       runs=total, errors=errors,
                       wall_seconds=sum(cell_walls))
    return writer
