"""The simulated heterogeneous network of computers (HNOC).

This package is the substrate substituting for the paper's physical testbed:
machines with heterogeneous speeds and multi-user load, links with
heterogeneous latency/bandwidth and multiple protocols, and fault injection.
"""

from .faults import (
    FaultSchedule,
    TransientFaultConfig,
    TransientLinkFaults,
    attach_transient_faults,
    inject_faults,
    random_fault_schedule,
)
from .link import (
    FAST_INTERCONNECT,
    GIGABIT_ETHERNET,
    SHARED_MEMORY,
    TCP_100MBIT,
    WAN_10MBIT,
    Link,
    Protocol,
)
from .load import (
    NO_LOAD,
    ConstantLoad,
    DiurnalLoad,
    LoadModel,
    RandomWalkLoad,
    SquareWaveLoad,
    StepLoad,
)
from .machine import Machine
from .network import Cluster
from .serialize import (
    cluster_from_dict,
    cluster_from_json,
    cluster_to_dict,
    cluster_to_json,
)
from .presets import (
    PAPER_SPEEDS,
    TOPOLOGY_PRESETS,
    clusters_of_clusters,
    homogeneous_network,
    multiprotocol_network,
    paper_network,
    random_network,
    two_site_network,
    uniform_network,
)
from .topology import (
    Topology,
    TopologyNode,
    TopologyReport,
    topology_from_dict,
    topology_to_dict,
)

__all__ = [
    "Machine",
    "Cluster",
    "Link",
    "Protocol",
    "TCP_100MBIT",
    "SHARED_MEMORY",
    "FAST_INTERCONNECT",
    "GIGABIT_ETHERNET",
    "WAN_10MBIT",
    "LoadModel",
    "ConstantLoad",
    "StepLoad",
    "SquareWaveLoad",
    "RandomWalkLoad",
    "DiurnalLoad",
    "NO_LOAD",
    "FaultSchedule",
    "TransientFaultConfig",
    "TransientLinkFaults",
    "attach_transient_faults",
    "inject_faults",
    "random_fault_schedule",
    "PAPER_SPEEDS",
    "cluster_to_dict",
    "cluster_from_dict",
    "cluster_to_json",
    "cluster_from_json",
    "paper_network",
    "homogeneous_network",
    "uniform_network",
    "random_network",
    "multiprotocol_network",
    "two_site_network",
    "clusters_of_clusters",
    "TOPOLOGY_PRESETS",
    "Topology",
    "TopologyNode",
    "TopologyReport",
    "topology_to_dict",
    "topology_from_dict",
]
