"""Reduction operations for collectives (MPI_Op analogue).

Operations work elementwise on NumPy arrays and directly on scalars; MAXLOC
and MINLOC operate on ``(value, index)`` pairs as in MPI.  All provided ops
are associative and commutative, so any reduction tree order is valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR", "MAXLOC", "MINLOC"]


@dataclass(frozen=True)
class Op:
    """A named, associative, commutative binary reduction."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)


def _maxloc(a: tuple, b: tuple) -> tuple:
    # (value, index): larger value wins; ties broken by smaller index.
    if a[0] > b[0] or (a[0] == b[0] and a[1] <= b[1]):
        return a
    return b


def _minloc(a: tuple, b: tuple) -> tuple:
    if a[0] < b[0] or (a[0] == b[0] and a[1] <= b[1]):
        return a
    return b


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b))
MIN = Op("MPI_MIN", lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b))
LAND = Op("MPI_LAND", lambda a, b: np.logical_and(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else bool(a) and bool(b))
LOR = Op("MPI_LOR", lambda a, b: np.logical_or(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else bool(a) or bool(b))
BAND = Op("MPI_BAND", lambda a, b: a & b)
BOR = Op("MPI_BOR", lambda a, b: a | b)
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)
