"""Differential equivalence: ``threads`` vs ``events`` backends.

The event scheduler is only a valid replacement for the thread backend if
it is *observationally identical*: every scenario must produce bitwise-
equal per-rank finish times, delivered payloads, and typed-error
outcomes under both engines.  Each scenario here runs twice — once per
backend — and the two :class:`MPIRunResult`s are compared field by
field.  A representative cross-section runs in tier-1; the full corpus
sweep (apps, larger pools, every collective algorithm) is slow-marked.
"""

import pytest

from repro.cluster import (
    FaultSchedule,
    TOPOLOGY_PRESETS,
    inject_faults,
    paper_network,
    uniform_network,
)
from repro.core import run_hmpi
from repro.mpi import ANY_SOURCE, run_mpi
from repro.mpi.ops import SUM, MAX
from repro.mpi.pool import Task, WorkerPool
from repro.perfmodel import CallableModel
from repro.util.errors import OperationTimeoutError, RankFailedError

BACKENDS = ("threads", "events")


def run_both(app, cluster_factory, runner=run_mpi, **kw):
    """Run ``app`` under both backends; assert bitwise-identical results.

    Clusters are rebuilt per run (fault schedules and load models are
    stateful), which also guarantees neither run can leak state into the
    other.  Returns the events-backend result for scenario-specific
    assertions.
    """
    results = {}
    for backend in BACKENDS:
        results[backend] = runner(app, cluster_factory(), engine=backend, **kw)
    ref, alt = results["threads"], results["events"]
    assert ref.finish_times == alt.finish_times
    assert ref.makespan == alt.makespan
    assert ref.results == alt.results
    assert [type(e) for e in ref.exceptions] == \
           [type(e) for e in alt.exceptions]
    return alt


# ----------------------------------------------------------------------
# scenario corpus
# ----------------------------------------------------------------------

def scenario_ring(env):
    """pt2pt ring with per-rank compute: clocks must interleave equally."""
    env.compute(5.0 * (env.rank + 1))
    nxt = (env.rank + 1) % env.size
    prv = (env.rank - 1) % env.size
    env.comm_world.send(env.rank * 10, nxt, nbytes=1 << 12)
    got = env.comm_world.recv(prv)
    return (got, round(env.wtime(), 12))


def scenario_wildcard_fanin(env):
    """ANY_SOURCE fan-in: service order must follow virtual arrivals.

    The real-time sleep mirrors the worker pool's fidelity aid: under the
    thread backend it lets every sender enqueue before the wildcard
    receive posts, so min-virtual-arrival matching applies — the same
    order the event backend produces by construction.
    """
    import time

    if env.rank == 0:
        got = []
        for _ in range(env.size - 1):
            time.sleep(0.005)
            got.append(env.comm_world.recv(ANY_SOURCE))
        return (got, env.wtime())
    env.compute(3.0 * ((env.rank * 7) % 5 + 1))
    env.comm_world.send((env.rank, env.wtime()), 0, nbytes=1 << 10)
    return None


def scenario_ssend(env):
    """Synchronous-send rendezvous charges the ack round trip."""
    if env.rank == 0:
        env.comm_world.ssend("payload", 1, nbytes=1 << 16)
        return env.wtime()
    if env.rank == 1:
        env.compute(2.0)
        got = env.comm_world.recv(0)
        return (got, env.wtime())
    return None


def scenario_probe(env):
    """Blocking probe then targeted recv."""
    if env.rank == 0:
        status = env.comm_world.probe(ANY_SOURCE)
        got = env.comm_world.recv(status.source, status.tag)
        return (status.source, got, env.wtime())
    env.compute(1.0 + env.rank)
    env.comm_world.send(env.rank * 100, 0, tag=7, nbytes=512)
    return None


def scenario_requests(env):
    """Nonblocking irecv/isend with waitall."""
    comm = env.comm_world
    nxt = (env.rank + 1) % env.size
    prv = (env.rank - 1) % env.size
    reqs = [comm.irecv(prv), comm.irecv(prv)]
    comm.isend(("a", env.rank), nxt, nbytes=256)
    env.compute(2.0)
    comm.isend(("b", env.rank), nxt, nbytes=256)
    from repro.mpi import waitall
    vals = [v for v, _ in waitall(reqs)]
    return (vals, env.wtime())


def scenario_collectives(env):
    """A chain of collectives mixing algorithms."""
    comm = env.comm_world
    env.compute(float(env.rank))
    total = comm.allreduce(env.rank, SUM, algorithm="binomial")
    peak = comm.reduce(env.wtime(), MAX, root=0, algorithm="flat")
    ranks = comm.allgather(env.rank, algorithm="ring")
    comm.barrier(algorithm="dissemination")
    return (total, peak, ranks, env.wtime())


def scenario_pool(env):
    """Greedy self-scheduling worker pool (the wildcard stress case)."""
    pool = WorkerPool(env.comm_world, env.compute)
    if pool.is_master:
        # Distinct volumes: tied arrivals are serviced in queue order,
        # which under the thread backend is a real-time race — arrival
        # ties are the one place the reference itself is unordered.
        tasks = [Task(volume=7.0 + 1.37 * i, payload=i, nbytes=256)
                 for i in range(12)]
        out = pool.map(tasks)
        return (out, env.wtime())
    # Per-worker served counts are NOT compared: which equally-good
    # worker the master services is a real-time race under the thread
    # backend (the sleep hack only makes min-arrival matching *likely*),
    # while the event backend orders by virtual arrival exactly.  The
    # delivered results, makespan, and finish times are pinned instead.
    pool.worker_loop()
    return None


def scenario_recv_timeout(env):
    """Timed receive on a silent peer: typed timeout, clock at deadline."""
    if env.rank == 0:
        try:
            env.comm_world.recv(1, timeout=4.0)
        except OperationTimeoutError:
            return ("timeout", env.wtime())
        return ("unexpected",)
    env.compute(1.0)
    return ("silent", env.wtime())


def scenario_rank_failure(env):
    """Survivor blocked on a dead peer gets RankFailedError."""
    if env.rank == 1:
        env.compute(200.0)  # the machine dies at t=0.5
        return None
    if env.rank == 0:
        try:
            env.comm_world.recv(1)
        except RankFailedError as exc:
            return ("typed", tuple(sorted(exc.ranks)), env.wtime())
        return ("untyped",)
    env.compute(0.25)
    return ("bystander", env.wtime())


MPI_SCENARIOS = {
    "ring": (scenario_ring, lambda: paper_network()),
    "wildcard_fanin": (scenario_wildcard_fanin, lambda: paper_network()),
    "ssend": (scenario_ssend, lambda: uniform_network([100.0, 60.0, 30.0])),
    "probe": (scenario_probe, lambda: uniform_network([100.0] * 4)),
    "requests": (scenario_requests, lambda: paper_network()),
    "collectives": (scenario_collectives, lambda: paper_network()),
    "pool": (scenario_pool, lambda: paper_network()),
    "topology": (scenario_collectives,
                 lambda: TOPOLOGY_PRESETS["two_site"]()),
}


def _failing_cluster():
    cluster = uniform_network([100.0, 100.0, 100.0])
    inject_faults(cluster, FaultSchedule({"m01": 0.5}))
    return cluster


FT_SCENARIOS = {
    "recv_timeout": (scenario_recv_timeout,
                     lambda: uniform_network([100.0, 100.0])),
    "rank_failure": (scenario_rank_failure, _failing_cluster),
}


class TestDifferentialMPI:
    @pytest.mark.parametrize("name", sorted(MPI_SCENARIOS))
    def test_backends_agree(self, name):
        app, factory = MPI_SCENARIOS[name]
        run_both(app, factory)

    @pytest.mark.parametrize("name", sorted(FT_SCENARIOS))
    def test_backends_agree_under_faults(self, name):
        app, factory = FT_SCENARIOS[name]
        run_both(app, factory, timeout=30.0)


class TestDifferentialHMPI:
    def test_group_lifecycle(self):
        """recon + group_create/free + collective inside the group."""

        def app(hmpi):
            hmpi.recon()
            model = CallableModel(
                nproc=3,
                node_volume=lambda i: [300.0, 200.0, 100.0][i],
                link_volume=lambda s, d: 4096.0,
            )
            gid = hmpi.group_create(model)
            if gid is None:
                return ("released", hmpi.wtime())
            if gid.is_member:
                my_rank = gid.rank
                hmpi.compute([300.0, 200.0, 100.0][my_rank])
                gid.comm.barrier()
                hmpi.group_free(gid)
                return ("member", my_rank, hmpi.wtime())
            return ("outside", hmpi.wtime())

        run_both(app, paper_network, runner=run_hmpi)


@pytest.mark.slow
class TestDifferentialSweep:
    """Full-corpus sweep: every collective algorithm, apps, a big pool."""

    @pytest.mark.parametrize("algorithm", ["binomial", "flat", "chain",
                                           "hierarchical", "auto"])
    def test_bcast_algorithms(self, algorithm):
        def app(env):
            env.compute(float(env.rank % 3))
            got = env.comm_world.bcast(
                ("blob", env.size) if env.rank == 0 else None,
                root=0, algorithm=algorithm, nbytes=1 << 14)
            return (got, env.wtime())

        run_both(app, lambda: TOPOLOGY_PRESETS["two_site"]())

    def test_big_pool(self):
        """64-task pool: at this scale the thread backend's real-time
        service races drift from min-arrival matching (each race
        perturbs the next assignment), so makespans are no longer
        comparable — the reference itself is racy.  Pin what each
        backend does guarantee: delivered payloads agree across
        backends, and the event backend is bitwise-repeatable."""

        def app(env):
            pool = WorkerPool(env.comm_world, env.compute)
            if pool.is_master:
                tasks = [Task(volume=5.0 + 0.61 * i, payload=i,
                              nbytes=128) for i in range(64)]
                return pool.map(tasks)
            pool.worker_loop()  # served counts are racy; see scenario_pool
            return None

        runs = {be: run_mpi(app, paper_network(), engine=be)
                for be in BACKENDS}
        assert runs["threads"].results[0] == runs["events"].results[0]
        again = run_mpi(app, paper_network(), engine="events")
        assert again.finish_times == runs["events"].finish_times
        assert again.results == runs["events"].results

    def test_matmul_driver(self):
        from repro.apps.matmul import run_matmul_hmpi

        results = {}
        for backend in BACKENDS:
            r = run_matmul_hmpi(paper_network(), n=12, r=6, m=3, l=6,
                                engine=backend)
            results[backend] = (r.algorithm_time, r.makespan)
        assert results["threads"] == results["events"]

    def test_jacobi_ft_driver(self):
        from repro.apps.jacobi import run_jacobi_ft
        from repro.cluster import FaultSchedule, inject_faults

        results = {}
        for backend in BACKENDS:
            cluster = uniform_network([100.0] * 5)
            inject_faults(cluster, FaultSchedule({"m02": 0.05}))
            r = run_jacobi_ft(cluster, n=20, p=4, niter=4, k=50,
                              engine=backend)
            assert r.error is None
            results[backend] = (r.repairs, r.makespan)
        assert results["threads"] == results["events"]
