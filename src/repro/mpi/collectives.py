"""Collective-communication algorithms over the point-to-point layer.

Every collective is built from the substrate's sends/receives, so virtual
time accrues exactly as the underlying message pattern dictates — a
broadcast over a binomial tree on a heterogeneous network really does cost
the critical path through the tree's links.

Algorithms (the classic choices, all deterministic):

============  ==================================================
barrier       dissemination (ceil(log2 p) rounds) | hierarchical
bcast         binomial | flat | chain | hierarchical
reduce        mirrored binomial | flat | hierarchical
allreduce     reduce to rank 0 + bcast (same algorithm set)
gather(v)     linear into ``root`` (rank order)
scatter(v)    linear from ``root``
allgather     ring (p-1 steps) | hierarchical
alltoall      rotation schedule (p-1 steps, pairwise balanced)
scan          linear chain (inclusive prefix)
exscan        linear chain (exclusive prefix)
============  ==================================================

**Hierarchical algorithms** exploit the cluster's attached
:class:`~repro.cluster.topology.Topology` (when there is one): ranks are
partitioned by the coarsest topology level where their machines diverge
(site, then subnet, then switch), a *leader* per part carries all
cross-level traffic, and the pattern recurses within each part — so a
two-site broadcast crosses the slow wide-area link once per remote site
instead of wherever the flat tree happens to put edges.  Without a
topology (or when all ranks share one subtree) they degrade to the flat
defaults.

``algorithm="auto"`` picks per call: hierarchical when the topology
splits the ranks and crossing the split level is slower than talking
within a part, otherwise the best flat algorithm for the port model
(flat fan-out on contention-free switched networks, binomial under
single-port).  Unknown algorithm names raise
:class:`~repro.util.errors.MPICommError` uniformly across collectives.

Each invocation draws a fresh internal tag from its communicator so that
back-to-back collectives can never cross-match even under unusual
interleavings.  All ranks of a communicator must call the same collectives
in the same order (the MPI rule), which keeps those tag sequences aligned.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from ..util.errors import MPICommError
from ..util.options import check_choice
from .ops import Op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.topology import TopologyNode
    from .communicator import Comm

__all__ = [
    "barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
    "allgather", "alltoall", "scan", "exscan", "reduce_scatter_block",
    "BCAST_ALGORITHMS", "REDUCE_ALGORITHMS", "ALLGATHER_ALGORITHMS",
    "BARRIER_ALGORITHMS", "ALLREDUCE_ALGORITHMS",
]

BCAST_ALGORITHMS = ("binomial", "flat", "chain", "hierarchical", "auto")
REDUCE_ALGORITHMS = ("binomial", "flat", "hierarchical", "auto")
ALLREDUCE_ALGORITHMS = ("binomial", "flat", "hierarchical", "auto")
ALLGATHER_ALGORITHMS = ("ring", "hierarchical", "auto")
BARRIER_ALGORITHMS = ("dissemination", "hierarchical", "auto")

#: Message size assumed by ``auto`` when the caller doesn't charge an
#: explicit byte count (reduce/allgather payloads are pickled objects).
_AUTO_PROBE_NBYTES = 1024

#: ``auto`` goes hierarchical when crossing the topology's split level
#: costs at least this much more than talking within a part.
_AUTO_HIER_RATIO = 1.5


def _check_root(comm: "Comm", root: int) -> None:
    if not 0 <= root < comm.size:
        raise MPICommError(f"root {root} out of range for communicator size {comm.size}")


def _check_algorithm(coll: str, algorithm: str, allowed: Sequence[str]) -> None:
    """Uniform validation: every ``algorithm=`` accepting collective raises
    the same typed error (message shape shared with every registry-string
    option via :func:`repro.util.options.check_choice`)."""
    check_choice(f"{coll} algorithm", algorithm, allowed, exc=MPICommError)


# ----------------------------------------------------------------------
# topology plumbing shared by the hierarchical algorithms
# ----------------------------------------------------------------------

def _comm_machines(comm: "Comm", members: Sequence[int]) -> list[int]:
    """Machine index per communicator rank in ``members``."""
    placement = comm._engine.placement
    group = comm._group
    return [placement[group.world_rank(r)] for r in members]


def _split_parts(
    comm: "Comm", members: Sequence[int]
) -> "tuple[list[list[int]], TopologyNode] | None":
    """Partition ``members`` (comm ranks) by topology subtree.

    Uses the coarsest level where the members' machines diverge; returns
    ``(parts, level)`` with parts ordered by subtree (each part ascending),
    or None without a topology or when the machines never diverge.  Every
    rank computes the identical partition (it depends only on placement),
    which is what keeps the hierarchical schedules consistent.
    """
    topology = comm._engine.cluster.topology
    if topology is None:
        return None
    got = topology.split(_comm_machines(comm, members))
    if got is None:
        return None
    keys, level = got
    by_key: dict[int, list[int]] = {}
    for r, k in zip(members, keys):
        by_key.setdefault(k, []).append(r)
    return [by_key[k] for k in sorted(by_key)], level


def _record_algorithm(
    comm: "Comm", coll: str, algorithm: str, level: "TopologyNode | None"
) -> None:
    """Count the fired (collective, algorithm, split level) in the run's
    metrics registry (attached by the HMPI runtime's observability)."""
    metrics = getattr(comm._engine, "metrics", None)
    if metrics is not None:
        metrics.counter(
            "hmpi.coll.algorithm", coll=coll, algorithm=algorithm,
            level=level.name if level is not None else "-",
        ).inc()
        metrics.mark_vtime(comm._engine.vtime(comm._world_rank))


def _choose_auto(
    comm: "Comm", coll: str, nbytes: int | None
) -> "tuple[str, TopologyNode | None]":
    """Pick an algorithm from the topology, port model and message size.

    Hierarchical when the ranks split across a topology level whose
    crossing cost dominates intra-part traffic; otherwise the best flat
    choice for the port model: trees when a sender's port serialises its
    transfers (single-port), fan-out/ring on the paper's contention-free
    switch.
    """
    engine = comm._engine
    if coll == "allgather":
        flat = "ring"
    elif coll == "barrier":
        flat = "dissemination"
    else:
        flat = "binomial" if engine.cluster.single_port else "flat"
    members = list(range(comm.size))
    got = _split_parts(comm, members)
    if got is None:
        return flat, None
    parts, level = got
    if not any(len(p) > 1 for p in parts):
        # One rank per subtree: the leader phase IS the whole collective,
        # and a flat algorithm does the same work without the detour.
        return flat, level
    nb = nbytes if nbytes else _AUTO_PROBE_NBYTES
    inter = min(p.transfer_time(nb) for p in level.protocols)
    intra = 0.0
    cluster = engine.cluster
    for part in parts:
        if len(part) < 2:
            continue
        machines = _comm_machines(comm, part[:2])
        intra = max(intra, cluster.transfer_time(machines[0], machines[1], nb))
    if inter >= _AUTO_HIER_RATIO * intra:
        return "hierarchical", level
    return flat, level


def _virtual_order(members: Sequence[int], root: int) -> list[int]:
    """Members rotated so ``root`` comes first (binomial virtual ranks)."""
    i = list(members).index(root)
    return list(members[i:]) + list(members[:i])


def _bcast_members(
    comm: "Comm", obj: Any, order: Sequence[int], tag: int, nbytes: int | None
) -> Any:
    """Binomial broadcast over an arbitrary rank list (root = order[0]).

    Ranks outside ``order`` return ``obj`` unchanged — callers invoke this
    unconditionally so every rank walks the same schedule.
    """
    size = len(order)
    if size <= 1 or comm.rank not in order:
        return obj
    v = order.index(comm.rank)
    mask = 1
    while mask < size:
        if v & mask:
            obj, _ = comm._recv_internal(order[v - mask], tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if v + mask < size:
            comm._send_internal(obj, order[v + mask], tag, nbytes=nbytes)
        mask >>= 1
    return obj


def _reduce_members(
    comm: "Comm", acc: Any, op: Op, order: Sequence[int], tag: int
) -> Any:
    """Mirrored binomial reduction over an arbitrary rank list.

    Returns the combined value at ``order[0]``; the accumulator each
    non-root contributed elsewhere (callers discard it).  Ranks outside
    ``order`` pass through.
    """
    size = len(order)
    if size <= 1 or comm.rank not in order:
        return acc
    v = order.index(comm.rank)
    mask = 1
    while mask < size:
        if v & mask:
            comm._send_internal(acc, order[v & ~mask], tag)
            break
        child = v | mask
        if child < size:
            val, _ = comm._recv_internal(order[child], tag)
            acc = op(acc, val)
        mask <<= 1
    return acc


def _descend(
    comm: "Comm", members: list[int], cur_root: int
) -> "tuple[list[list[int]], list[int], list[int], int] | None":
    """One level of the leader hierarchy below ``members``.

    Returns ``(parts, leader_order, my_part, my_leader)`` or None when the
    members no longer split.  The leader of the root's part is the root
    itself (so data never takes a detour); other parts elect their lowest
    rank.  ``leader_order`` is rotated root-first for the binomial phases.
    """
    got = _split_parts(comm, members)
    if got is None:
        return None
    parts, _ = got
    leaders = [cur_root if cur_root in part else part[0] for part in parts]
    my_part = next(part for part in parts if comm.rank in part)
    my_leader = leaders[parts.index(my_part)]
    return parts, _virtual_order(leaders, cur_root), my_part, my_leader


def barrier(comm: "Comm", algorithm: str = "dissemination") -> None:
    """Barrier: after return, every rank's clock is >= the virtual time at
    which the last rank entered (up to message latencies).

    ``algorithm``: ``"dissemination"`` (default, ceil(log2 p) rounds),
    ``"hierarchical"`` (gather to subnet leaders, disseminate among
    leaders, release locally — each slow level is crossed O(log sites)
    times instead of O(p log p)), or ``"auto"``.
    """
    _check_algorithm("barrier", algorithm, BARRIER_ALGORITHMS)
    level = None
    if algorithm == "auto":
        algorithm, level = _choose_auto(comm, "barrier", None)
    if algorithm == "hierarchical" and level is None:
        got = _split_parts(comm, list(range(comm.size)))
        level = got[1] if got else None
    _record_algorithm(comm, "barrier", algorithm, level)
    if algorithm == "hierarchical":
        return _barrier_hierarchical(comm)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        comm._send_internal(None, dst, tag, nbytes=1)
        comm._recv_internal(src, tag)
        k *= 2


def _barrier_hierarchical(comm: "Comm") -> None:
    """Leader barrier: local arrival, leader dissemination, local release."""
    tag = comm._next_coll_tag()
    if comm.size == 1:
        return
    got = _split_parts(comm, list(range(comm.size)))
    if got is None:
        return _dissemination(comm, list(range(comm.size)), tag)
    parts, _ = got
    leaders = [part[0] for part in parts]
    my_part = next(part for part in parts if comm.rank in part)
    leader = my_part[0]
    if comm.rank == leader:
        for r in my_part[1:]:
            comm._recv_internal(r, tag)
        _dissemination(comm, leaders, tag)
        for r in my_part[1:]:
            comm._send_internal(None, r, tag, nbytes=1)
    else:
        comm._send_internal(None, leader, tag, nbytes=1)
        comm._recv_internal(leader, tag)


def _dissemination(comm: "Comm", members: Sequence[int], tag: int) -> None:
    """Dissemination rounds over an arbitrary member list."""
    size = len(members)
    if size <= 1 or comm.rank not in members:
        return
    pos = list(members).index(comm.rank)
    k = 1
    while k < size:
        comm._send_internal(None, members[(pos + k) % size], tag, nbytes=1)
        comm._recv_internal(members[(pos - k) % size], tag)
        k *= 2


def bcast(comm: "Comm", obj: Any, root: int = 0, nbytes: int | None = None,
          algorithm: str = "binomial") -> Any:
    """Broadcast; returns the root's object on every rank.

    ``algorithm`` selects the message pattern — the right choice depends
    on the network's port model:

    - ``"binomial"`` (default): log2(p) rounds; the classic compromise.
    - ``"flat"``: the root sends to everyone directly.  Optimal on a
      contention-free switched network (distinct pairs transfer in
      parallel), poor under the single-port model (the root serialises
      p-1 transfers).
    - ``"chain"``: rank-order pipeline; p-1 sequential hops.  The
      fewest sends per node, useful under single-port when combined with
      segmentation; here mostly a teaching baseline.
    - ``"hierarchical"``: leaders relay across each topology level, then
      the broadcast recurses within their parts — the slow level is
      crossed once per remote subtree.
    - ``"auto"``: per-call selection from topology and port model.
    """
    _check_algorithm("bcast", algorithm, BCAST_ALGORITHMS)
    _check_root(comm, root)
    level = None
    if algorithm == "auto":
        algorithm, level = _choose_auto(comm, "bcast", nbytes)
    if algorithm == "hierarchical" and level is None:
        got = _split_parts(comm, list(range(comm.size)))
        level = got[1] if got else None
    _record_algorithm(comm, "bcast", algorithm, level)
    if algorithm == "flat":
        return _bcast_flat(comm, obj, root, nbytes)
    if algorithm == "chain":
        return _bcast_chain(comm, obj, root, nbytes)
    if algorithm == "hierarchical":
        return _bcast_hierarchical(comm, obj, root, nbytes)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size  # virtual rank: root becomes 0
    # Receive phase: every non-root receives exactly once, from the peer
    # that differs in its lowest set bit.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (rank - mask) % size
            obj, _ = comm._recv_internal(parent, tag)
            break
        mask <<= 1
    # Send phase: forward to peers at decreasing distances.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            comm._send_internal(obj, (rank + mask) % size, tag, nbytes=nbytes)
        mask >>= 1
    return obj


def _bcast_flat(comm: "Comm", obj: Any, root: int, nbytes: int | None) -> Any:
    """Root sends to every other rank directly."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.size == 1:
        return obj
    if comm.rank == root:
        for r in range(comm.size):
            if r != root:
                comm._send_internal(obj, r, tag, nbytes=nbytes)
        return obj
    value, _ = comm._recv_internal(root, tag)
    return value


def _bcast_chain(comm: "Comm", obj: Any, root: int, nbytes: int | None) -> Any:
    """Pipeline along virtual rank order rooted at ``root``."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size
    if vrank != 0:
        obj, _ = comm._recv_internal((rank - 1) % size, tag)
    if vrank != size - 1:
        comm._send_internal(obj, (rank + 1) % size, tag, nbytes=nbytes)
    return obj


def _bcast_hierarchical(comm: "Comm", obj: Any, root: int, nbytes: int | None) -> Any:
    """Top-down leader relay: broadcast among level leaders, descend into
    the own part, repeat until the members no longer split."""
    tag = comm._next_coll_tag()
    members = list(range(comm.size))
    cur_root = root
    while len(members) > 1:
        got = _descend(comm, members, cur_root)
        if got is None:
            # Flat remainder (or no topology at all): one binomial tree.
            return _bcast_members(
                comm, obj, _virtual_order(members, cur_root), tag, nbytes
            )
        _parts, leader_order, my_part, my_leader = got
        obj = _bcast_members(comm, obj, leader_order, tag, nbytes)
        members, cur_root = my_part, my_leader
    return obj


def reduce(comm: "Comm", obj: Any, op: Op, root: int = 0,
           algorithm: str = "binomial") -> Any:
    """Reduction toward ``root``; returns the result at root, None elsewhere.

    ``algorithm``: ``"binomial"`` (default, mirrored binomial tree),
    ``"flat"`` (every rank sends straight to root — optimal on a
    contention-free switch where the root's receives overlap),
    ``"hierarchical"`` (combine within each topology part, then leaders
    combine across the level — one message per part crosses the slow
    link), or ``"auto"``.
    """
    _check_algorithm("reduce", algorithm, REDUCE_ALGORITHMS)
    _check_root(comm, root)
    level = None
    if algorithm == "auto":
        algorithm, level = _choose_auto(comm, "reduce", None)
    if algorithm == "hierarchical" and level is None:
        got = _split_parts(comm, list(range(comm.size)))
        level = got[1] if got else None
    _record_algorithm(comm, "reduce", algorithm, level)
    if algorithm == "flat":
        return _reduce_flat(comm, obj, op, root)
    if algorithm == "hierarchical":
        return _reduce_hierarchical(comm, obj, op, root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size
    acc = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            comm._send_internal(acc, parent, tag)
            break
        child_v = vrank | mask
        if child_v < size:
            child_val, _ = comm._recv_internal((child_v + root) % size, tag)
            acc = op(acc, child_val)
        mask <<= 1
    return acc if rank == root else None


def _reduce_flat(comm: "Comm", obj: Any, op: Op, root: int) -> Any:
    """Every non-root sends directly to root; root combines in rank order."""
    tag = comm._next_coll_tag()
    if comm.size == 1:
        return obj
    if comm.rank != root:
        comm._send_internal(obj, root, tag)
        return None
    acc = None
    for r in range(comm.size):
        val = obj if r == root else comm._recv_internal(r, tag)[0]
        acc = val if acc is None else op(acc, val)
    return acc


def _reduce_hierarchical(comm: "Comm", obj: Any, op: Op, root: int) -> Any:
    """Bottom-up leader relay: combine within each part first, then the
    leaders combine across the level toward ``root``."""
    tag = comm._next_coll_tag()
    return _reduce_hier_members(comm, obj, op, list(range(comm.size)), root, tag)


def _reduce_hier_members(
    comm: "Comm", acc: Any, op: Op, members: list[int], cur_root: int, tag: int
) -> Any:
    if len(members) <= 1:
        return acc if comm.rank == cur_root else None
    got = _descend(comm, members, cur_root)
    if got is None:
        acc = _reduce_members(
            comm, acc, op, _virtual_order(members, cur_root), tag
        )
        return acc if comm.rank == cur_root else None
    _parts, leader_order, my_part, my_leader = got
    acc = _reduce_hier_members(comm, acc, op, my_part, my_leader, tag)
    if comm.rank == my_leader:
        acc = _reduce_members(comm, acc, op, leader_order, tag)
    return acc if comm.rank == cur_root else None


def allreduce(comm: "Comm", obj: Any, op: Op, algorithm: str = "binomial") -> Any:
    """Reduce to rank 0, then broadcast the result to everyone.

    ``algorithm`` is forwarded to both phases (``"auto"`` resolves
    independently per phase, which is deliberate — the two patterns can
    have different best answers for the same network).
    """
    _check_algorithm("allreduce", algorithm, ALLREDUCE_ALGORITHMS)
    partial = reduce(comm, obj, op, root=0, algorithm=algorithm)
    return bcast(comm, partial, root=0, algorithm=algorithm)


def gather(comm: "Comm", obj: Any, root: int = 0) -> list[Any] | None:
    """Linear gather; root returns the list indexed by rank, others None."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for r in range(comm.size):
            if r != root:
                out[r], _ = comm._recv_internal(r, tag)
        return out
    comm._send_internal(obj, root, tag)
    return None


def scatter(comm: "Comm", objs: list[Any] | None, root: int = 0) -> Any:
    """Linear scatter; rank r receives ``objs[r]`` from root."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise MPICommError(
                f"scatter at root needs a list of length {comm.size}"
            )
        for r in range(comm.size):
            if r != root:
                comm._send_internal(objs[r], r, tag)
        return objs[root]
    value, _ = comm._recv_internal(root, tag)
    return value


def allgather(comm: "Comm", obj: Any, algorithm: str = "ring") -> list[Any]:
    """Allgather; every rank returns the list indexed by rank.

    ``algorithm``: ``"ring"`` (default, p-1 steps each forwarding the
    newest block), ``"hierarchical"`` (gather each topology part to its
    leader, ring over leaders exchanging whole part blocks, then
    broadcast the table within each part — the slow level carries
    O(parts) messages instead of O(p)), or ``"auto"``.
    """
    _check_algorithm("allgather", algorithm, ALLGATHER_ALGORITHMS)
    level = None
    if algorithm == "auto":
        algorithm, level = _choose_auto(comm, "allgather", None)
    if algorithm == "hierarchical" and level is None:
        got = _split_parts(comm, list(range(comm.size)))
        level = got[1] if got else None
    _record_algorithm(comm, "allgather", algorithm, level)
    tag = comm._next_coll_tag()
    if algorithm == "hierarchical":
        return _allgather_hierarchical(comm, obj, tag)
    return _allgather_ring(comm, obj, tag)


def _allgather_ring(comm: "Comm", obj: Any, tag: int) -> list[Any]:
    size, rank = comm.size, comm.rank
    out: list[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_index = rank
    for _ in range(size - 1):
        comm._send_internal((carry_index, out[carry_index]), right, tag)
        (recv_index, value), _ = comm._recv_internal(left, tag)
        out[recv_index] = value
        carry_index = recv_index
    return out


def _allgather_hierarchical(comm: "Comm", obj: Any, tag: int) -> list[Any]:
    """Gather-to-leader, leader ring of part blocks, local broadcast."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return [obj]
    got = _split_parts(comm, list(range(size)))
    if got is None:
        return _allgather_ring(comm, obj, tag)
    parts, _ = got
    my_part = next(part for part in parts if rank in part)
    leader = my_part[0]
    # Phase 1: each part gathers its contributions at the leader.
    blocks: dict[int, Any] | None
    if rank == leader:
        blocks = {rank: obj}
        for r in my_part[1:]:
            blocks[r], _ = comm._recv_internal(r, tag)
    else:
        comm._send_internal(obj, leader, tag)
        blocks = None
    # Phase 2: leaders circulate whole part blocks around a ring.
    leaders = [part[0] for part in parts]
    if rank == leader and len(leaders) > 1:
        pos = leaders.index(leader)
        right = leaders[(pos + 1) % len(leaders)]
        left = leaders[(pos - 1) % len(leaders)]
        assert blocks is not None
        carry = blocks
        blocks = dict(blocks)
        for _ in range(len(leaders) - 1):
            comm._send_internal(carry, right, tag)
            carry, _ = comm._recv_internal(left, tag)
            blocks.update(carry)
    # Phase 3: leaders broadcast the assembled table within their part.
    blocks = _bcast_members(comm, blocks, my_part, tag, None)
    out: list[Any] = [None] * size
    assert blocks is not None
    for r, value in blocks.items():
        out[r] = value
    return out


def alltoall(comm: "Comm", objs: list[Any]) -> list[Any]:
    """Rotation-schedule personalized all-to-all.

    At step k each rank sends to ``(rank+k) % p`` and receives from
    ``(rank-k) % p``, which pairs every rank with every other exactly once
    and keeps the pattern contention-balanced.
    """
    size, rank = comm.size, comm.rank
    if objs is None or len(objs) != size:
        raise MPICommError(f"alltoall needs a list of length {size}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        comm._send_internal(objs[dst], dst, tag)
        out[src], _ = comm._recv_internal(src, tag)
    return out


def scan(comm: "Comm", obj: Any, op: Op) -> Any:
    """Inclusive prefix reduction along the rank order (linear chain)."""
    tag = comm._next_coll_tag()
    acc = obj
    if comm.rank > 0:
        prev, _ = comm._recv_internal(comm.rank - 1, tag)
        acc = op(prev, acc)
    if comm.rank < comm.size - 1:
        comm._send_internal(acc, comm.rank + 1, tag)
    return acc


def exscan(comm: "Comm", obj: Any, op: Op) -> Any:
    """Exclusive prefix reduction; rank 0 receives None (MPI leaves it
    undefined there)."""
    tag = comm._next_coll_tag()
    prev: Any = None
    if comm.rank > 0:
        prev, _ = comm._recv_internal(comm.rank - 1, tag)
    if comm.rank < comm.size - 1:
        here = obj if prev is None else op(prev, obj)
        comm._send_internal(here, comm.rank + 1, tag)
    return prev


def reduce_scatter_block(comm: "Comm", objs: list[Any], op: Op) -> Any:
    """Reduce ``objs`` elementwise across ranks, rank r keeping element r.

    Implemented as reduce-to-0 of the whole list followed by a scatter —
    simple and adequate for the message volumes our applications use.
    """
    size = comm.size
    if objs is None or len(objs) != size:
        raise MPICommError(f"reduce_scatter_block needs a list of length {size}")
    combined = reduce(comm, objs, Op(op.name, lambda a, b, _op=op: [_op(x, y) for x, y in zip(a, b)]), root=0)
    return scatter(comm, combined, root=0)
