"""Timeof backends — repeated-candidate pricing, interp vs trace vs net.

``HMPI_Timeof`` is called once per candidate group, and a selection
prices hundreds of candidates against one model: per-candidate cost is
what bounds the mapper.  The ``"interp"`` backend re-walks the scheme
through the TimelineVisitor for every candidate; the ``"net"`` backend
unrolls the scheme once, topologically sorts the resulting timing DAG
once per (model, shape), and then prices each candidate with a single
longest-path sweep over pre-resolved dependencies.  All backends return
**identical** predictions (the property suite pins net bitwise to
trace), so this bench measures pure pricing throughput across group
sizes — construction included, since amortising it is the point.

The headline assertion: on repeated-candidate evaluation the net backend
is **≥ 2×** the interpreter.  With ``--smoke``, a quick regression check
compares net-backend evaluations/sec against the recorded baseline in
``benchmarks/baselines/timeof_net_smoke.json`` (fails below half the
recorded rate, with a generous floor for slow shared runners).
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.apps.jacobi import bind_jacobi_model
from repro.cluster import paper_network
from repro.core.netmodel import NetworkModel
from repro.core.seleng import make_evaluator
from repro.util.tables import Table

GROUP_SIZES = (4, 6, 8)
NCANDIDATES = 240
N = 240  # grid size; volumes don't affect pricing cost
K = 100
BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "timeof_net_smoke.json"
)
SPEEDUP_FLOOR = 2.0


def _bound(p: int):
    rows = [N // p] * p
    rows[-1] += N - sum(rows)
    return bind_jacobi_model(p, K, N, rows)


def _mappings(rng, p: int, nmachines: int):
    return [
        tuple(int(m) for m in rng.integers(0, nmachines, size=p))
        for _ in range(NCANDIDATES)
    ]


def _time_backend(backend: str, bound, netmodel, mappings):
    """(wall seconds, evals/sec) to build the evaluator and price all
    candidates one by one (the mapper's repeated-Timeof access pattern)."""
    t0 = time.perf_counter()
    evaluator = make_evaluator(bound, netmodel, None, backend)
    times = [evaluator.evaluate(m) for m in mappings]
    wall = time.perf_counter() - t0
    return wall, len(mappings) / wall, times


def test_timeof_net_speedup(report):
    """Net-backend pricing must be ≥ 2× the interpreter at every size."""
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    rng = np.random.default_rng(0)

    t = Table("group size", "interp (s)", "trace (s)", "net (s)",
              "net speedup (x)",
              title=f"Timeof backends — {NCANDIDATES} candidates, "
                    "jacobi model, paper cluster")
    worst = float("inf")
    for p in GROUP_SIZES:
        bound = _bound(p)
        mappings = _mappings(rng, p, cluster.size)
        w_interp, _, v_interp = _time_backend("interp", bound, netmodel, mappings)
        w_trace, _, v_trace = _time_backend("trace", bound, netmodel, mappings)
        w_net, _, v_net = _time_backend("net", bound, netmodel, mappings)
        assert v_net == v_trace  # bitwise: same floats, any group size
        assert np.allclose(v_net, v_interp, rtol=1e-9, atol=0.0)
        speedup = w_interp / w_net
        worst = min(worst, speedup)
        t.add(str(p), f"{w_interp:.3f}", f"{w_trace:.3f}", f"{w_net:.3f}",
              f"{speedup:.1f}")
    report.emit(t.render())

    assert worst >= SPEEDUP_FLOOR, (
        f"net backend only {worst:.2f}x the interpreter on repeated-"
        f"candidate evaluation; the DAG amortisation should buy ≥ "
        f"{SPEEDUP_FLOOR}x"
    )


def test_timeof_net_smoke(smoke):
    """Fail if net-backend pricing throughput regressed >2x vs baseline."""
    if not smoke:
        pytest.skip("smoke regression check runs with --smoke")
    baseline = json.loads(BASELINE_PATH.read_text())
    cluster = paper_network()
    netmodel = NetworkModel(cluster, list(range(cluster.size)))
    rng = np.random.default_rng(0)
    bound = _bound(8)
    mappings = _mappings(rng, 8, cluster.size)
    best = 0.0
    for _ in range(3):
        _, eps, _ = _time_backend("net", bound, netmodel, mappings)
        best = max(best, eps)
    # Generous floor keeps slow shared CI machines from flaking; beyond
    # that, falling below half the recorded rate is a regression.
    floor = min(0.5 * baseline["evals_per_sec"], 2_000.0)
    assert best >= floor, (
        f"net backend priced {best:,.0f} candidates/sec, floor "
        f"{floor:,.0f} (baseline {baseline['evals_per_sec']:,.0f})"
    )
