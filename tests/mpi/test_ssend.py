"""Synchronous-mode sends (rendezvous semantics)."""

import pytest

from repro.cluster import TCP_100MBIT, uniform_network
from repro.mpi import run_mpi
from repro.util.errors import DeadlockError


class TestRendezvous:
    def test_sender_waits_for_receiver(self):
        """The sender's clock advances past the receiver's matching point."""
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.ssend(b"payload", 1, tag=1, nbytes=100)
                return env.wtime()
            env.compute(500.0)  # receiver busy for 5 s before matching
            c.recv(0, 1)
            return env.wtime()

        res = run_mpi(app, cluster)
        # A plain send would return after ~latency; the ssend waits out the
        # receiver's 5 s of computation plus the ack latency.
        assert res.results[0] > 5.0

    def test_plain_send_does_not_wait(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.send(b"payload", 1, tag=1, nbytes=100)
                return env.wtime()
            env.compute(500.0)
            c.recv(0, 1)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.results[0] < 0.01

    def test_early_receiver_costs_only_roundtrip(self):
        cluster = uniform_network([100.0, 100.0])
        nbytes = 1_250_000  # 0.1 s

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                env.compute(100.0)  # 1 s; receiver posts immediately
                c.ssend(b"x", 1, tag=0, nbytes=nbytes)
                return env.wtime()
            return c.recv(0, 0) and env.wtime() or env.wtime()

        res = run_mpi(app, cluster)
        expected = 1.0 + TCP_100MBIT.transfer_time(nbytes) + TCP_100MBIT.latency
        assert res.results[0] == pytest.approx(expected, rel=1e-3)

    def test_payload_delivered(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.ssend({"k": 42}, 1)
                return None
            return c.recv(0)

        res = run_mpi(app, cluster)
        assert res.results[1] == {"k": 42}

    def test_unmatched_ssend_deadlocks(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            if env.rank == 0:
                env.comm_world.ssend(b"never", 1, tag=7)
            return "done"

        with pytest.raises(DeadlockError):
            run_mpi(app, cluster, timeout=10)

    def test_ssend_to_proc_null_noop(self):
        from repro.mpi import PROC_NULL

        cluster = uniform_network([100.0])

        def app(env):
            env.comm_world.ssend(b"x", PROC_NULL)
            return env.wtime()

        res = run_mpi(app, cluster)
        assert res.results[0] == 0.0


class TestInterleaving:
    def test_ssend_then_send_ordering(self):
        cluster = uniform_network([100.0, 100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.ssend("first", 1, tag=0)
                c.send("second", 1, tag=0)
                return None
            a = c.recv(0, 0)
            b = c.recv(0, 0)
            return (a, b)

        res = run_mpi(app, cluster)
        assert res.results[1] == ("first", "second")

    def test_acks_do_not_cross_match_user_receives(self):
        """An ack travels on the internal context; a wildcard user recv
        must never see it."""
        from repro.mpi import ANY_SOURCE, ANY_TAG

        cluster = uniform_network([100.0, 100.0])

        def app(env):
            c = env.comm_world
            if env.rank == 0:
                c.ssend("sync", 1, tag=3)
                c.send("plain", 1, tag=4)
                return None
            first = c.recv(ANY_SOURCE, 3)
            second = c.recv(ANY_SOURCE, ANY_TAG)
            return (first, second)

        res = run_mpi(app, cluster)
        assert res.results[1] == ("sync", "plain")
