"""The EM3D performance model — verbatim from the paper's Figure 4.

The model has four parameters: ``p`` abstract processors, the benchmark
granularity ``k`` (nodes computed by one benchmark unit), the per-sub-body
node counts ``d`` and the pairwise boundary-value counts ``dep``.  Node
volume of processor I is ``d[I]/k`` benchmark units; the link from L to I
carries ``dep[I][L] * sizeof(double)`` bytes; the scheme is one iteration:
all boundary transfers in parallel, then all updates in parallel.
"""

from __future__ import annotations

from ...perfmodel import PerformanceModel, compile_model
from .problem import EM3DProblem

__all__ = ["EM3D_MODEL_SOURCE", "em3d_model", "bind_em3d_model"]

#: Figure 4 of the paper, verbatim (modulo whitespace).
EM3D_MODEL_SOURCE = """
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
}
"""

_cached: PerformanceModel | None = None


def em3d_model() -> PerformanceModel:
    """The compiled ``Em3d`` model (compiled once, cached)."""
    global _cached
    if _cached is None:
        _cached = compile_model(EM3D_MODEL_SOURCE)
    return _cached


def bind_em3d_model(problem: EM3DProblem, k: int):
    """Bind the model to a problem instance (the paper's
    ``HMPI_Pack_model_parameters`` step)."""
    return em3d_model().bind(
        problem.p, k, problem.d.tolist(), problem.dep.tolist()
    )
