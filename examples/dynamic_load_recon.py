#!/usr/bin/env python3
"""HMPI_Recon on a multi-user network.

The paper's third HNOC challenge: machines are used by other people, so the
speed a parallel program actually obtains varies over time.  This example
puts a heavy external job on the nominally fastest workstation and shows
that (a) a selection based on nominal speeds picks it and suffers, while
(b) refreshing the estimates with HMPI_Recon routes the big workload
elsewhere.

Run:  python examples/dynamic_load_recon.py
"""

from repro.cluster import ConstantLoad, paper_network
from repro.core import run_hmpi
from repro.perfmodel import CallableModel

VOLUMES = [60.0, 400.0, 200.0]  # abstract processor workloads
COMM_BYTES = 256 * 1024


def make_cluster():
    cluster = paper_network()
    # An external user takes 85% of ws06 (nominal speed 176 -> ~26).
    cluster.machine("ws06").load = ConstantLoad(0.15)
    return cluster


def model():
    return CallableModel(
        nproc=len(VOLUMES),
        node_volume=lambda i: VOLUMES[i],
        link_volume=lambda s, d: float(COMM_BYTES),
        name="loaded-demo",
    )


def app(hmpi, use_recon):
    if use_recon:
        hmpi.recon()
    gid = hmpi.group_create(model())
    elapsed = None
    if gid.is_member:
        comm = gid.comm
        comm.barrier()
        t0 = comm.wtime()
        hmpi.compute(VOLUMES[comm.rank])
        comm.barrier()
        elapsed = comm.wtime() - t0
        hmpi.group_free(gid)
    speeds = hmpi.state.netmodel.speeds().tolist() if hmpi.is_host() else None
    return elapsed, gid.world_ranks, speeds


def main():
    for use_recon in (False, True):
        res = run_hmpi(app, make_cluster(), args=(use_recon,))
        elapsed = max(e for e, _, _ in res.results if e is not None)
        _, ranks, speeds = res.results[0]
        tag = "with HMPI_Recon" if use_recon else "nominal speeds "
        print(f"{tag}: group {ranks}  ->  {elapsed:.4f} virtual s")
        print(f"   speed estimates: "
              f"{[round(s, 1) for s in speeds]}")
    print("\nws06 is nominally the fastest (176) but 85% consumed by an")
    print("external job; only the recon'd run discovers its true speed and")
    print("places the 400-unit workload on a genuinely fast machine.")


if __name__ == "__main__":
    main()
