"""Performance-model consistency linter.

A PMDL model makes two kinds of statements that can silently disagree: the
*declarative* volumes (``node``/``link``) and the *operational* ``scheme``
(which performs percentages of those volumes).  A well-formed model's
scheme performs exactly 100% of every processor's computation and 100% of
every pair's communication — both paper models do (verified in the test
suite).  A model whose author got a percentage denominator wrong will
still compile and estimate, just wrongly; this linter catches that.

>>> report = lint_model(bound_model)
>>> report.ok
True
>>> print(report)                                  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .model import AbstractBoundModel, LinearActionVisitor

__all__ = ["LintReport", "lint_model"]

_TOLERANCE = 1e-6


@dataclass
class LintReport:
    """Outcome of linting one bound model."""

    issues: list[str] = field(default_factory=list)
    compute_percent: dict[int, float] = field(default_factory=dict)
    transfer_percent: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __str__(self) -> str:
        if self.ok:
            return "model is consistent: scheme covers 100% of all volumes"
        return "model inconsistencies:\n" + "\n".join(f"  - {i}" for i in self.issues)


class _Accumulator(LinearActionVisitor):
    def __init__(self) -> None:
        self.compute_pct: dict[int, float] = {}
        self.transfer_pct: dict[tuple[int, int], float] = {}
        self.negative: list[str] = []

    def compute(self, percent: float, proc: int) -> None:
        if percent < 0:
            self.negative.append(f"negative compute percent {percent} on {proc}")
        self.compute_pct[proc] = self.compute_pct.get(proc, 0.0) + percent

    def transfer(self, percent: float, src: int, dst: int) -> None:
        if percent < 0:
            self.negative.append(
                f"negative transfer percent {percent} on {src}->{dst}"
            )
        key = (src, dst)
        self.transfer_pct[key] = self.transfer_pct.get(key, 0.0) + percent


def lint_model(model: AbstractBoundModel, tolerance: float = _TOLERANCE) -> LintReport:
    """Check that the scheme covers exactly the declared volumes."""
    acc = _Accumulator()
    model.walk_scheme(acc)
    report = LintReport(
        compute_percent=dict(acc.compute_pct),
        transfer_percent=dict(acc.transfer_pct),
    )
    report.issues.extend(acc.negative)

    node = model.node_volumes()
    links = model.link_volumes()
    n = model.nproc

    for proc in range(n):
        pct = acc.compute_pct.get(proc, 0.0)
        if node[proc] > 0 and abs(pct - 100.0) > tolerance * 100:
            report.issues.append(
                f"processor {proc}: scheme performs {pct:.4f}% of its "
                f"computation (declared volume {node[proc]:g})"
            )
        elif node[proc] == 0 and pct > tolerance * 100:
            report.issues.append(
                f"processor {proc}: scheme computes {pct:.4f}% but the "
                "node declaration gives it zero volume"
            )

    seen_pairs = set(acc.transfer_pct)
    for src in range(n):
        for dst in range(n):
            declared = links[src, dst]
            pct = acc.transfer_pct.get((src, dst), 0.0)
            if declared > 0 and abs(pct - 100.0) > tolerance * 100:
                report.issues.append(
                    f"link {src}->{dst}: scheme transfers {pct:.4f}% of the "
                    f"declared {declared:g} bytes"
                )
            elif declared == 0 and (src, dst) in seen_pairs and pct > 0:
                report.issues.append(
                    f"link {src}->{dst}: scheme transfers on a pair with "
                    "zero declared volume"
                )
    return report
