"""Dynamic self-scheduling vs HMPI's static model-driven balancing.

Two answers to heterogeneity on the same divisible workload and network:
the worker pool needs no performance model but pays task granularity and
round-trip latency; HMPI needs the model but assigns each processor its
exact share up front.  Both must crush the naive uniform split, and HMPI
should win when the model is exact (as it is here).
"""

import pytest

from repro.cluster import paper_network
from repro.core import run_hmpi
from repro.mpi import run_mpi
from repro.mpi.pool import Task, run_task_pool
from repro.perfmodel import CallableModel

TOTAL_WORK = 800.0
NTASKS = 40


def pool_time():
    def app(env):
        tasks = [Task(TOTAL_WORK / NTASKS, payload=i, fn=None)
                 for i in range(NTASKS)]
        run_task_pool(env, tasks)
        env.comm_world.barrier()
        return env.wtime()

    res = run_mpi(app, paper_network())
    return res.makespan


def hmpi_time():
    # 8 workers (the pool's master does not compute), balanced statically.
    def app(hmpi):
        speeds = hmpi.state.netmodel.speeds()
        host = hmpi.env.machine_index
        # intended arrangement: host first, rest by descending speed
        order = [host] + sorted(
            (i for i in range(len(speeds)) if i != host),
            key=lambda i: -speeds[i],
        )[:7]
        shares = [TOTAL_WORK * speeds[m] / sum(speeds[m] for m in order)
                  for m in order]
        model = CallableModel(8, lambda i: shares[i], lambda s, d: 64.0)
        gid = hmpi.group_create(model)
        elapsed = None
        if gid.is_member:
            comm = gid.comm
            comm.barrier()
            t0 = comm.wtime()
            hmpi.compute(shares[comm.rank], gid.my_concurrency)
            comm.barrier()
            elapsed = comm.wtime() - t0
            hmpi.group_free(gid)
        return elapsed

    res = run_hmpi(app, paper_network())
    return max(t for t in res.results if t is not None)


def uniform_time():
    def app2(env):
        c = env.comm_world.split(0 if env.rank > 0 else 1, key=env.rank)
        if env.rank == 0:
            return 0.0
        c.barrier()
        t0 = c.wtime()
        env.compute(TOTAL_WORK / 8)
        c.barrier()
        return c.wtime() - t0

    res = run_mpi(app2, paper_network())
    return max(res.results)


class TestPoolVsHMPI:
    def test_both_beat_uniform_split(self):
        t_uniform = uniform_time()
        t_pool = pool_time()
        t_hmpi = hmpi_time()
        assert t_pool < t_uniform
        assert t_hmpi < t_uniform

    def test_static_model_beats_dynamic_granularity(self):
        """With an exact model, HMPI's static shares avoid both the pool's
        task-granularity floor and its dispatch round trips."""
        t_pool = pool_time()
        t_hmpi = hmpi_time()
        assert t_hmpi < t_pool

    def test_pool_within_granularity_bound(self):
        """The pool's makespan is bounded by the optimum plus one task on
        the slowest machine that executed anything."""
        t_pool = pool_time()
        per_task = TOTAL_WORK / NTASKS
        # worst granularity penalty: one 20-unit task on the speed-9 box
        assert t_pool <= (TOTAL_WORK / 521) + per_task / 9 + 0.5
