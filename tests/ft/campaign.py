"""Differential fault-injection campaign harness.

A :class:`Scenario` describes one seeded fault schedule for the
fault-tolerant Jacobi solver: machine deaths at chosen virtual times,
optional transient link faults, and the fault-tolerance knobs.  The
contract every scenario must satisfy (`assert_outcome`):

1. **Bounded termination** — the run finishes in bounded virtual time
   (and in bounded real time, enforced by the launcher's join timeout:
   a hang fails the test instead of wedging the suite).
2. **Differential correctness** — if the run produced a grid, it is
   *bitwise identical* to the fault-free result (which every partition of
   the Jacobi sweep computes, so this also equals a fault-free rerun on
   the surviving subset and the serial reference).
3. **Typed failure** — if no grid was produced, the run ended with a
   typed, explained outcome (`result.error`), never silence.

A scenario that cannot possibly fail over (e.g. the host machine dies)
sets ``must_recover=False``; otherwise recovery itself is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.jacobi import JacobiFTResult, jacobi_reference, run_jacobi_ft
from repro.cluster import (
    FaultSchedule,
    TransientFaultConfig,
    TransientLinkFaults,
    attach_transient_faults,
    inject_faults,
    uniform_network,
)
from repro.mpi import FTConfig

__all__ = ["Scenario", "run_scenario", "assert_outcome", "FAST_SCENARIOS"]

#: Problem size shared by the whole campaign — small enough for CI, large
#: enough that deaths can land in every phase of the run.
N, NITER, K = 18, 12, 100


@dataclass
class Scenario:
    name: str
    speeds: list[float] = field(default_factory=lambda: [100.0] * 4)
    p: int | None = None                     # group size; default all
    deaths: dict[int, float] = field(default_factory=dict)  # machine -> vtime
    transient: TransientFaultConfig | None = None
    transient_seed: int = 0
    ft: FTConfig | None = None
    checkpoint_every: int = 2
    max_repairs: int = 8
    #: Hard cap on virtual makespan; generous (a fault-free run takes
    #: ~0.1 vs) but finite — unbounded retry loops would blow it.
    vtime_bound: float = 60.0
    #: Whether a successful repair (grid produced) is required, or a
    #: typed failure is an acceptable outcome (host death etc.).
    must_recover: bool = True

    def build_cluster(self):
        cluster = uniform_network(list(self.speeds))
        if self.deaths:
            schedule = FaultSchedule({
                cluster.machines[m].name: t for m, t in self.deaths.items()
            })
            inject_faults(cluster, schedule)
        if self.transient is not None:
            attach_transient_faults(
                cluster,
                TransientLinkFaults(self.transient, seed=self.transient_seed),
            )
        return cluster


def reference_grid() -> np.ndarray:
    return jacobi_reference(N, NITER)


def run_scenario(sc: Scenario, timeout: float = 60.0) -> JacobiFTResult:
    cluster = sc.build_cluster()
    return run_jacobi_ft(
        cluster, n=N, p=sc.p or len(sc.speeds), niter=NITER, k=K,
        checkpoint_every=sc.checkpoint_every, ft=sc.ft,
        max_repairs=sc.max_repairs, timeout=timeout,
    )


def assert_outcome(sc: Scenario, res: JacobiFTResult,
                   reference: np.ndarray | None = None) -> None:
    ref = reference_grid() if reference is None else reference
    assert res.makespan <= sc.vtime_bound, (
        f"{sc.name}: virtual time {res.makespan} exceeds bound "
        f"{sc.vtime_bound}"
    )
    if res.grid is None:
        assert not sc.must_recover, (
            f"{sc.name}: expected recovery but run failed: {res.error}"
        )
        assert res.error, f"{sc.name}: failed without a typed explanation"
    else:
        assert np.array_equal(res.grid, ref), (
            f"{sc.name}: repaired result diverges from the fault-free grid"
        )
        # Every scheduled death before the end of the run must be
        # reflected in the outcome's dead set (no silently resurrected
        # machines).
        for m, t in sc.deaths.items():
            if t < res.makespan:
                assert m in res.dead_ranks, (
                    f"{sc.name}: machine {m} died at {t} but is not in "
                    f"dead_ranks {res.dead_ranks}"
                )


#: The quick sweep run on every CI push; the slow campaign in
#: test_campaign.py extends it with seed sweeps and heavier fault rates.
FAST_SCENARIOS = [
    Scenario("control"),
    Scenario("death-at-selection", deaths={2: 1e-6}),
    Scenario("death-early", deaths={2: 0.005}),
    Scenario("death-mid", deaths={2: 0.04}),
    Scenario("death-late-collective", deaths={2: 0.085}),
    Scenario("two-deaths-staggered", speeds=[100.0] * 5,
             deaths={2: 0.01, 3: 0.05}),
    Scenario("two-deaths-simultaneous", speeds=[100.0] * 5,
             deaths={1: 0.03, 3: 0.03}),
    Scenario("draft-replacement", speeds=[100.0] * 5, p=4,
             deaths={2: 0.03}),
    Scenario("transient-masked",
             transient=TransientFaultConfig(drop_prob=0.3, delay_prob=0.2,
                                            delay=5e-4)),
    Scenario("transient-plus-death", deaths={1: 0.05},
             transient=TransientFaultConfig(drop_prob=0.2)),
    Scenario("host-death", deaths={0: 0.03}, must_recover=False),
    Scenario("all-but-host-die", deaths={1: 0.02, 2: 0.02, 3: 0.02},
             must_recover=False),
]
