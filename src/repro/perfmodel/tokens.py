"""Token definitions for the performance-model definition language (PMDL).

The PMDL is the mpC-derived language of the paper's Figures 4 and 7:
C-like expressions and declarations plus the dedicated constructs
``algorithm``, ``coord``, ``node``, ``link``, ``parent``, ``scheme``,
``par``, ``bench``, ``length`` and the action operator ``%%``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenKind", "Token", "KEYWORDS", "PUNCTUATION"]


class TokenKind(Enum):
    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words.  ``bench`` and ``length`` are the paper's unit markers;
#: ``par`` is the parallel algorithmic pattern; the C keywords cover the
#: declaration/statement subset the example models use.
KEYWORDS = frozenset({
    "algorithm", "coord", "node", "link", "parent", "scheme",
    "bench", "length", "par", "for", "if", "else", "while",
    "int", "double", "float", "long", "char", "void",
    "typedef", "struct", "sizeof", "return", "break", "continue",
})

#: Multi-character punctuation first (longest match wins in the lexer).
PUNCTUATION = (
    "%%", "->", "++", "--", "&&", "||", "==", "!=", "<=", ">=",
    "+=", "-=", "*=", "/=",
    "(", ")", "{", "}", "[", "]", ";", ",", ":", ".", "?",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
