"""Ready-made clusters, including the paper's testbed.

The experiments in Section 5 of the paper ran on "a small heterogeneous
local network of 9 different Solaris and Linux workstations" whose measured
speeds on the applications' core computations were::

    46, 46, 46, 46, 46, 46, 176, 106, 9

connected by 100 Mbit switched Ethernet.  (The matrix-multiplication
paragraph lists only eight numbers — 46 x 6, 106, 9 — which is an apparent
typo since the same 9-machine network is described; we reuse the full
9-speed set for both applications and note the discrepancy in
EXPERIMENTS.md.)
"""

from __future__ import annotations

from collections.abc import Sequence

from ..util.rng import make_rng
from .link import (
    FAST_INTERCONNECT,
    GIGABIT_ETHERNET,
    SHARED_MEMORY,
    TCP_100MBIT,
    WAN_10MBIT,
    Link,
    Protocol,
)
from .machine import Machine
from .network import Cluster
from .topology import Topology, TopologyNode

__all__ = [
    "PAPER_SPEEDS",
    "paper_network",
    "homogeneous_network",
    "uniform_network",
    "random_network",
    "multiprotocol_network",
    "two_site_network",
    "clusters_of_clusters",
    "TOPOLOGY_PRESETS",
]

#: Measured speeds of the paper's nine workstations (benchmark units / sec).
PAPER_SPEEDS: tuple[float, ...] = (46, 46, 46, 46, 46, 46, 176, 106, 9)

#: OS mix matching "Solaris and Linux workstations" (cosmetic only).
_PAPER_OS: tuple[str, ...] = (
    "solaris", "solaris", "linux", "linux", "solaris",
    "linux", "linux", "solaris", "linux",
)


def paper_network(speeds: Sequence[float] = PAPER_SPEEDS) -> Cluster:
    """The paper's 9-workstation 100 Mbit switched-Ethernet network.

    Every inter-machine pair shares identical TCP links; ranks co-located on
    one machine use shared memory, mirroring the MPICH behaviour the paper
    cites as the one standard exception to single-protocol MPI.
    """
    machines = [
        Machine(name=f"ws{i:02d}", speed=s, os=_PAPER_OS[i % len(_PAPER_OS)])
        for i, s in enumerate(speeds)
    ]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def homogeneous_network(n: int, speed: float = 100.0) -> Cluster:
    """``n`` identical machines — the control case where HMPI ≡ MPI."""
    machines = [Machine(name=f"node{i:02d}", speed=speed) for i in range(n)]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def uniform_network(speeds: Sequence[float], name_prefix: str = "m") -> Cluster:
    """Machines with the given speeds and uniform default TCP links."""
    machines = [Machine(name=f"{name_prefix}{i:02d}", speed=s) for i, s in enumerate(speeds)]
    return Cluster(machines, default_protocols=(TCP_100MBIT,))


def random_network(
    n: int,
    seed: int = 0,
    speed_range: tuple[float, float] = (10.0, 200.0),
    latency_range: tuple[float, float] = (5e-5, 5e-4),
    bandwidth_range: tuple[float, float] = (5e6, 5e7),
) -> Cluster:
    """A fully random HNOC: heterogeneous speeds *and* heterogeneous links.

    Used by property-based tests and robustness sweeps; deterministic given
    ``seed``.  Links are symmetric per unordered pair.
    """
    rng = make_rng(seed)
    machines = [
        Machine(name=f"rnd{i:02d}", speed=float(rng.uniform(*speed_range)))
        for i in range(n)
    ]
    cluster = Cluster(machines, default_protocols=(TCP_100MBIT,))
    for i in range(n):
        for j in range(i + 1, n):
            proto = Protocol(
                name=f"tcp-{i}-{j}",
                latency=float(rng.uniform(*latency_range)),
                bandwidth=float(rng.uniform(*bandwidth_range)),
            )
            cluster.set_link(i, j, Link.single(proto), symmetric=True)
    return cluster


def multiprotocol_network(
    speeds: Sequence[float] = PAPER_SPEEDS,
    fast_pairs: Sequence[tuple[int, int]] = ((6, 7), (0, 1), (2, 3)),
) -> Cluster:
    """Paper network plus a faster interconnect on selected pairs.

    Models the multi-protocol challenge: the named pairs can talk over both
    TCP and a fast transport, and the library picks the faster per message.
    Pinning all links to ``"tcp-100mbit"`` recovers the single-protocol
    baseline (see ``bench_ablation_protocol``).
    """
    cluster = paper_network(speeds)
    for i, j in fast_pairs:
        cluster.set_link(i, j, Link([TCP_100MBIT, FAST_INTERCONNECT]), symmetric=True)
    return cluster


# ----------------------------------------------------------------------
# hierarchical (multi-cluster) presets
# ----------------------------------------------------------------------

def two_site_network(
    machines_per_site: int = 4,
    speed: float = 100.0,
    site_protocol: Protocol = GIGABIT_ETHERNET,
    wan_protocol: Protocol = WAN_10MBIT,
) -> Cluster:
    """Two equal-speed sites (subnets) joined by a slow wide-area link.

    The canonical clusters-of-clusters scenario (MPICH-G2's motivating
    case): within a site machines talk over a fast switch, between sites
    every message crosses the WAN.  Equal machine speeds isolate the
    *communication* hierarchy — a compute-balancing mapper sees no
    difference between machines, so only topology locality can make
    ``HMPI_Group_create`` keep a group inside one site, and only
    hierarchical collectives can avoid redundant WAN crossings.
    """
    if machines_per_site < 2:
        raise ValueError("two_site_network needs >= 2 machines per site")
    machines = [
        Machine(name=f"s{s}m{i:02d}", speed=speed)
        for s in range(2)
        for i in range(machines_per_site)
    ]
    sites = [
        TopologyNode(
            name=f"site{s}", kind="subnet", protocols=(site_protocol,),
            children=tuple(
                TopologyNode.leaf(f"s{s}m{i:02d}")
                for i in range(machines_per_site)
            ),
        )
        for s in range(2)
    ]
    topo = Topology(TopologyNode(
        name="wan", kind="site", protocols=(wan_protocol,),
        children=tuple(sites),
    ))
    return Cluster(machines, default_protocols=(wan_protocol,), topology=topo)


def clusters_of_clusters(
    sites: int = 2,
    subnets_per_site: int = 2,
    machines_per_subnet: int = 2,
    speeds: Sequence[float] | None = None,
    switch_protocol: Protocol = GIGABIT_ETHERNET,
    lan_protocol: Protocol = TCP_100MBIT,
    wan_protocol: Protocol = WAN_10MBIT,
) -> Cluster:
    """A three-level hierarchy: WAN over sites, LAN over subnets, switches.

    ``speeds``, when given, is one speed per machine in site-major order
    (default: all 100).  Each deeper level is faster (WAN < LAN < switch),
    the shape hierarchical algorithms assume.
    """
    n = sites * subnets_per_site * machines_per_subnet
    if speeds is None:
        speeds = [100.0] * n
    if len(speeds) != n:
        raise ValueError(f"need {n} speeds, got {len(speeds)}")
    machines: list[Machine] = []
    site_nodes: list[TopologyNode] = []
    k = 0
    for s in range(sites):
        subnet_nodes: list[TopologyNode] = []
        for b in range(subnets_per_site):
            leaves: list[TopologyNode] = []
            for _ in range(machines_per_subnet):
                name = f"s{s}n{b}m{k:02d}"
                machines.append(Machine(name=name, speed=float(speeds[k])))
                leaves.append(TopologyNode.leaf(name))
                k += 1
            subnet_nodes.append(TopologyNode(
                name=f"s{s}n{b}", kind="switch",
                protocols=(switch_protocol,), children=tuple(leaves),
            ))
        site_nodes.append(TopologyNode(
            name=f"site{s}", kind="subnet", protocols=(lan_protocol,),
            children=tuple(subnet_nodes),
        ))
    topo = Topology(TopologyNode(
        name="wan", kind="site", protocols=(wan_protocol,),
        children=tuple(site_nodes),
    ))
    return Cluster(machines, default_protocols=(wan_protocol,), topology=topo)


#: Topology-annotated presets by name (CLI `repro topology show/check`).
TOPOLOGY_PRESETS = {
    "two_site": two_site_network,
    "clusters_of_clusters": clusters_of_clusters,
}
