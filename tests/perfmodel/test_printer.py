"""Source regeneration (pretty-printer) round trips."""

import pytest

from repro.apps.em3d.model import EM3D_MODEL_SOURCE
from repro.apps.matmul.model import MM_MODEL_SOURCE
from repro.perfmodel import parse, parse_expression
from repro.perfmodel.printer import (
    format_algorithm,
    format_expression,
    format_struct,
    format_unit,
)


class TestExpressionPrinting:
    @pytest.mark.parametrize("src", [
        "1 + 2 * 3",
        "a[i][j]",
        "Root.I",
        "h[Root.I][Root.J][Receiver.I][Receiver.J]",
        "sizeof(double)",
        "&Root",
        "-x",
        "!done",
        "i++",
        "a = b + 1",
        "a += 2",
        "GetProcessor(r, c, m, h, w, &Root)",
        "cond ? a : b",
        "100 / (w[J] * (n / l))",
    ])
    def test_roundtrip_preserves_value_structure(self, src):
        """print(parse(e)) re-parses to something that prints identically."""
        printed = format_expression(parse_expression(src))
        reprinted = format_expression(parse_expression(printed))
        assert printed == reprinted

    def test_parenthesisation_preserves_precedence(self):
        e = parse_expression("(1 + 2) * 3")
        assert format_expression(e) == "((1 + 2) * 3)"
        e2 = parse_expression("1 + 2 * 3")
        assert format_expression(e2) == "(1 + (2 * 3))"


class TestStructPrinting:
    def test_struct(self):
        (s,) = parse("typedef struct {int I; int J;} Processor;\n"
                     "algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; }")[:1]
        out = format_struct(s)
        assert out == "typedef struct {int I; int J;} Processor;"


class TestModelRoundTrips:
    @pytest.mark.parametrize("source", [EM3D_MODEL_SOURCE, MM_MODEL_SOURCE],
                             ids=["em3d", "matmul"])
    def test_canonical_fixed_point(self, source):
        """Printing is canonical: print(parse(print(parse(src)))) is stable."""
        once = format_unit(parse(source))
        twice = format_unit(parse(once))
        assert once == twice

    def test_em3d_semantics_preserved(self):
        """The regenerated source compiles to a model with identical
        volumes and scheme behaviour."""
        from repro.perfmodel import compile_model

        regenerated = format_unit(parse(EM3D_MODEL_SOURCE))
        original = compile_model(EM3D_MODEL_SOURCE)
        reparsed = compile_model(regenerated)
        d = [300, 200, 100]
        dep = [[0, 10, 5], [10, 0, 0], [5, 0, 0]]
        a = original.bind(3, 100, d, dep)
        b = reparsed.bind(3, 100, d, dep)
        assert (a.node_volumes() == b.node_volumes()).all()
        assert (a.link_volumes() == b.link_volumes()).all()
        assert a.parent_index() == b.parent_index()

    def test_matmul_semantics_preserved(self):
        import numpy as np

        from repro.apps.matmul.model import make_get_processor
        from repro.perfmodel import compile_model

        regenerated = format_unit(parse(MM_MODEL_SOURCE))
        ext = {"GetProcessor": make_get_processor()}
        original = compile_model(MM_MODEL_SOURCE, externals=ext)
        reparsed = compile_model(regenerated, externals=ext)
        m, r, n, l = 2, 8, 4, 2
        w = [1, 1]
        h = np.ones((m, m, m, m), dtype=int)
        a = original.bind(m, r, n, l, w, h)
        b = reparsed.bind(m, r, n, l, w, h)
        assert (a.node_volumes() == b.node_volumes()).all()
        assert (a.link_volumes() == b.link_volumes()).all()
