"""The heterogeneous network of computers (HNOC) as a whole.

A :class:`Cluster` is the executing environment both for the simulated MPI
substrate (which charges virtual time against it) and for the HMPI runtime's
network model (which estimates against it).  It owns the machines and a
directed link for every ordered pair, plus an intra-machine loopback link
for co-located ranks.

The default topology matches the paper's testbed: a switch connecting every
pair with identical 100 Mbit Ethernet, "enabling parallel communications
between the computers" — i.e. no cross-pair contention, which is also how
the virtual-time engine treats links (one clock per directed pair).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import TYPE_CHECKING

from ..util.errors import ClusterError
from .link import SHARED_MEMORY, TCP_100MBIT, Link, Protocol
from .machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import Topology

__all__ = ["Cluster"]


class Cluster:
    """Machines plus pairwise links.

    Parameters
    ----------
    machines:
        The computers of the network; names must be unique.
    links:
        Optional explicit mapping ``(src_index, dst_index) -> Link`` for
        ordered pairs of distinct machines.  Pairs not present fall back to
        ``default_protocols``.
    default_protocols:
        Protocols available on unlisted inter-machine pairs (default: the
        paper's 100 Mbit TCP).
    loopback:
        Link used between ranks co-located on the same machine (default:
        shared memory).
    single_port:
        When True, a machine's network interface is occupied for the whole
        duration of each outgoing transfer (the classic single-port model):
        a sender cannot overlap its own sends, so tree-shaped collectives
        beat flat fan-out.  Default False — the paper's switched network
        "enabling parallel communications between the computers".
    topology:
        Optional hierarchical :class:`~repro.cluster.topology.Topology`
        (site → subnet → switch → machine).  When present, unconfigured
        machine pairs derive their link from the pair's deepest common
        ancestor level instead of ``default_protocols``; explicit links
        (the ``links`` mapping and :meth:`set_link`) still take precedence.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        links: Mapping[tuple[int, int], Link] | None = None,
        default_protocols: Sequence[Protocol] = (TCP_100MBIT,),
        loopback: Link | None = None,
        single_port: bool = False,
        topology: "Topology | None" = None,
    ):
        self.single_port = bool(single_port)
        #: Optional transient link-fault schedule (drop/delay of individual
        #: messages); attach via :func:`repro.cluster.faults.attach_transient_faults`.
        self.transient_faults = None
        #: Optional hierarchical topology; install via set_topology.
        self.topology: "Topology | None" = None
        #: Cache of topology-derived links, kept separate from the explicit
        #: `_links` so serialization only dumps what was configured.
        self._topo_links: dict[tuple[int, int], Link] = {}
        if not machines:
            raise ClusterError("a cluster needs at least one machine")
        names = [m.name for m in machines]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate machine names: {names}")
        self.machines: tuple[Machine, ...] = tuple(machines)
        self._index = {m.name: i for i, m in enumerate(self.machines)}
        self._default_protocols = tuple(default_protocols)
        self.loopback = loopback if loopback is not None else Link.single(SHARED_MEMORY)
        self._links: dict[tuple[int, int], Link] = {}
        if links:
            n = len(self.machines)
            for (i, j), link in links.items():
                if not (0 <= i < n and 0 <= j < n):
                    raise ClusterError(f"link ({i}, {j}) references unknown machine index")
                if i == j:
                    raise ClusterError(
                        f"link ({i}, {j}) is a self-link; configure `loopback` instead"
                    )
                self._links[(i, j)] = link
        if topology is not None:
            self.set_topology(topology)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def set_topology(self, topology: "Topology | None") -> None:
        """Install (or clear, with None) a hierarchical topology.

        The topology is validated and bound against this cluster's machine
        set; unconfigured pairs then derive their link from the pair's
        deepest common ancestor level.  Raises :class:`ClusterError` when
        the tree's leaves don't match the cluster machines exactly.
        """
        self._topo_links.clear()
        if topology is None:
            self.topology = None
            return
        topology.bind(self)
        self.topology = topology

    def machine_distance(self, src: int, dst: int) -> int:
        """Tree distance between two machines (flat mesh: 0 or 1)."""
        n = self.size
        if not (0 <= src < n and 0 <= dst < n):
            raise ClusterError(f"pair ({src}, {dst}) references unknown machine index")
        if self.topology is not None:
            return self.topology.distance(src, dst)
        return 0 if src == dst else 1

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of machines."""
        return len(self.machines)

    def __len__(self) -> int:
        return self.size

    def machine(self, key: int | str) -> Machine:
        """Machine by index or by name."""
        if isinstance(key, str):
            try:
                return self.machines[self._index[key]]
            except KeyError:
                raise ClusterError(f"no machine named {key!r}") from None
        try:
            return self.machines[key]
        except IndexError:
            raise ClusterError(f"machine index {key} out of range") from None

    def index_of(self, name: str) -> int:
        """Index of the machine with the given name."""
        try:
            return self._index[name]
        except KeyError:
            raise ClusterError(f"no machine named {name!r}") from None

    def speeds(self) -> list[float]:
        """Base speeds of all machines, in index order."""
        return [m.speed for m in self.machines]

    def link(self, src: int, dst: int) -> Link:
        """The directed link from machine ``src`` to machine ``dst``.

        For ``src == dst`` returns the loopback link.  Unconfigured pairs
        derive their link from the topology's deepest-common-ancestor level
        when a topology is attached, else get a lazily created link with
        the default protocol set (created once and cached, so pinning it
        later is sticky).
        """
        n = self.size
        if not (0 <= src < n and 0 <= dst < n):
            raise ClusterError(f"link ({src}, {dst}) references unknown machine index")
        if src == dst:
            return self.loopback
        key = (src, dst)
        found = self._links.get(key)
        if found is None and self.topology is not None:
            found = self._topo_links.get(key)
            if found is None:
                found = self.topology.pair_link(src, dst)
                self._topo_links[key] = found
        if found is None:
            found = Link(list(self._default_protocols))
            self._links[key] = found
        return found

    def set_link(self, src: int, dst: int, link: Link, symmetric: bool = True) -> None:
        """Install an explicit link for a pair (both directions by default)."""
        if src == dst:
            raise ClusterError("use the `loopback` attribute for self-links")
        n = self.size
        if not (0 <= src < n and 0 <= dst < n):
            raise ClusterError(f"link ({src}, {dst}) references unknown machine index")
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def all_links(self) -> Iterable[tuple[int, int, Link]]:
        """Iterate over every configured (non-default) directed link."""
        for (i, j), link in sorted(self._links.items()):
            yield i, j, link

    # ------------------------------------------------------------------
    # cost queries used by both the engine and the estimator
    # ------------------------------------------------------------------
    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from machine ``src`` to ``dst``."""
        return self.link(src, dst).transfer_time(nbytes)

    def pin_all(self, protocol_name: str) -> None:
        """Pin every inter-machine link to one protocol (TCP-only baseline).

        Links that lack the protocol raise, so call this only on clusters
        built with a uniform protocol set.
        """
        n = self.size
        for i in range(n):
            for j in range(n):
                if i != j:
                    self.link(i, j).pin(protocol_name)

    def unpin_all(self) -> None:
        """Re-enable fastest-protocol selection on every link."""
        for _, _, link in list(self.all_links()):
            link.unpin()
        for link in self._topo_links.values():
            link.unpin()

    def __repr__(self) -> str:
        speeds = ", ".join(f"{m.name}:{m.speed:g}" for m in self.machines)
        return f"Cluster({speeds})"
