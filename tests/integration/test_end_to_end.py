"""Full-stack scenarios exercising every layer together."""

import numpy as np
import pytest

from repro.apps.em3d import generate_problem, run_em3d_hmpi, run_em3d_mpi
from repro.cluster import paper_network, uniform_network
from repro.core import ExhaustiveMapper, GreedyMapper, run_hmpi
from repro.perfmodel import compile_model


class TestDSLToExecution:
    """A model written in the DSL drives group creation, and the created
    group's measured time matches the model's prediction."""

    SRC = """
    algorithm Pipeline(int p, int v[p], int b[p][p]) {
      coord I=p;
      node {I>=0: bench*(v[I]);};
      link (L=p) {
        I>0 && L==I-1 : length*(b[I][L]) [L]->[I];
      };
      parent[0];
      scheme {
        int i;
        for (i = 0; i < p; i++) {
          100%%[i];
          if (i < p - 1) 100%%[i]->[i+1];
        }
      };
    }
    """

    def test_prediction_matches_faithful_execution(self):
        model = compile_model(self.SRC)
        v = [40.0, 120.0, 20.0]
        b = np.zeros((3, 3))
        b[1, 0] = b[2, 1] = 2_500_000  # 0.2 s each over 100 Mbit
        bound = model.bind(3, v, b.tolist())
        cluster = paper_network()

        def app(hmpi):
            predicted = hmpi.timeof(bound) if hmpi.is_host() else None
            gid = hmpi.group_create(bound, mapper=ExhaustiveMapper())
            measured = None
            if gid.is_member:
                comm = gid.comm
                comm.barrier()
                t0 = comm.wtime()
                me = comm.rank
                # execute exactly the modelled pattern
                if me > 0:
                    comm.recv(me - 1, tag=0)
                hmpi.compute(v[me])
                if me < comm.size - 1:
                    comm.send(None, me + 1, tag=0,
                              nbytes=int(b[me + 1, me]))
                comm.barrier()
                measured = comm.wtime() - t0
                hmpi.group_free(gid)
            return (predicted, measured)

        res = run_hmpi(app, cluster)
        predicted = res.results[0][0]
        measured = max(m for _, m in res.results if m is not None)
        # The scheme's resource clocks capture the pipeline dependency the
        # program actually executes, so agreement should be tight.
        assert measured == pytest.approx(predicted, rel=0.05)


class TestHeterogeneityGradient:
    def test_speedup_grows_with_heterogeneity(self):
        """The more heterogeneous the network, the bigger HMPI's win.

        Speeds descend from the host: the parent constraint pins sub-body 0
        to machine 0, so machine 0 must not be the slowest or both variants
        share the same immovable bottleneck.
        """
        problem = generate_problem(p=6, total_nodes=6_000, seed=4)
        speedups = []
        for spread in (1.0, 4.0, 16.0):
            speeds = list(np.geomspace(100.0 * spread, 100.0, 6))
            mpi = run_em3d_mpi(uniform_network(speeds), problem, niter=3, k=100)
            hmpi = run_em3d_hmpi(uniform_network(speeds), problem, niter=3, k=100)
            speedups.append(mpi.algorithm_time / hmpi.algorithm_time)
        assert speedups[0] == pytest.approx(1.0, abs=0.1)
        assert speedups[2] > speedups[1] >= speedups[0] - 0.1

    def test_parent_pin_bounds_hmpi_when_host_is_slowest(self):
        """With the host on the slowest machine, the pinned parent sub-body
        is an immovable bottleneck that HMPI cannot route around — a real
        consequence of the paper's parent semantics."""
        problem = generate_problem(p=4, total_nodes=4_000, seed=6)
        asc = uniform_network([10.0, 50.0, 100.0, 200.0])  # host slowest
        hmpi = run_em3d_hmpi(asc, problem, niter=2, k=100, mapper=GreedyMapper())
        mpi = run_em3d_mpi(asc, problem, niter=2, k=100)
        # HMPI still wins (it reorders the other three sub-bodies) but its
        # time is lower-bounded by sub-body 0 on the speed-10 host.
        lower_bound = problem.d[0] / 100 * 2 / 10.0  # volume/k * niter / speed
        assert hmpi.algorithm_time >= lower_bound
        assert hmpi.algorithm_time <= mpi.algorithm_time + 1e-9


class TestGroupSequences:
    def test_alternating_algorithms_reuse_processes(self):
        """Two different models, created and freed alternately."""
        from repro.perfmodel import CallableModel

        cluster = paper_network()
        m_small = CallableModel(2, lambda i: 50.0, lambda s, d: 1024.0)
        m_large = CallableModel(5, lambda i: 20.0 * (i + 1), lambda s, d: 2048.0)

        def app(hmpi):
            sizes = []
            for model in (m_small, m_large, m_small):
                gid = hmpi.group_create(model)
                if gid.is_member:
                    gid.comm.barrier()
                    sizes.append(gid.size)
                    hmpi.group_free(gid)
                else:
                    sizes.append(None)
            return sizes

        res = run_hmpi(app, cluster)
        host_sizes = res.results[0]
        assert host_sizes == [2, 5, 2]  # host is in every group (parent)
