"""The parallel matrix-multiplication algorithm over a block distribution.

One step ``k`` of the modified ScaLAPACK algorithm (paper Section 4,
Figure 6):

1. each r×r block of the pivot row ``b_k•`` of B is sent *vertically* from
   its owner to the other ``m-1`` processors of its grid column;
2. each r×r block of the pivot column ``a_•k`` of A is sent *horizontally*
   to the processors of other columns that own the corresponding block
   rows (who they are is exactly the ``h[I][J][K][L]`` overlap tensor);
3. every processor updates each of its C blocks:
   ``c_ij += a_ik @ b_kj`` — one block update being the unit of
   computation.

Messages are batched per (sender, receiver) pair and step, matching how a
real implementation would aggregate, and the byte volumes equal the
performance model's ``link`` declaration by construction.

The same function runs both the homogeneous MPI baseline and the
heterogeneous HMPI version — only the :class:`BlockDistribution` differs.
"""

from __future__ import annotations

import numpy as np

from ...mpi.communicator import Comm
from ...util.errors import ReproError
from .distribution import BlockDistribution

__all__ = ["matrix_block", "assemble_matrix", "matmul_algorithm", "reference_product"]


def matrix_block(seed: int, which: int, i: int, j: int, r: int) -> np.ndarray:
    """Deterministic r×r block (i, j) of matrix ``which`` (0 = A, 1 = B).

    Every rank can generate its owned blocks locally without communication,
    and the verification code can rebuild the full matrices identically.
    """
    mix = (seed * 1_000_003 + which * 7_777_777 + i * 131_071 + j * 8_191) % (2**63)
    rng = np.random.default_rng(mix)
    return rng.standard_normal((r, r))


def assemble_matrix(seed: int, which: int, n: int, r: int) -> np.ndarray:
    """The full ``(n*r) x (n*r)`` matrix from its deterministic blocks."""
    out = np.empty((n * r, n * r))
    for i in range(n):
        for j in range(n):
            out[i * r:(i + 1) * r, j * r:(j + 1) * r] = matrix_block(seed, which, i, j, r)
    return out


def reference_product(seed: int, n: int, r: int) -> np.ndarray:
    """NumPy ground truth ``A @ B`` for correctness checks."""
    return assemble_matrix(seed, 0, n, r) @ assemble_matrix(seed, 1, n, r)


def matmul_algorithm(
    compute,
    comm: Comm,
    dist: BlockDistribution,
    r: int,
    seed: int = 0,
) -> dict[tuple[int, int], np.ndarray]:
    """Run C = A×B on one grid member; returns this rank's C blocks.

    ``comm`` must have exactly ``m*m`` ranks, rank order row-major over the
    grid.  ``compute`` charges modelled computation (one unit per block
    update).
    """
    m = dist.m
    if comm.size != m * m:
        raise ReproError(f"communicator size {comm.size} != grid size {m * m}")
    me = comm.rank
    I, J = divmod(me, m)
    n, l, ng = dist.n, dist.l, dist.ng
    h4 = dist.h4()

    my_blocks = dist.blocks_of(me)
    my_rows = sorted({bi for bi, _ in my_blocks})   # global block rows I own
    my_cols = sorted({bj for _, bj in my_blocks})   # global block cols I own
    A = {(bi, bj): matrix_block(seed, 0, bi, bj, r) for bi, bj in my_blocks}
    B = {(bi, bj): matrix_block(seed, 1, bi, bj, r) for bi, bj in my_blocks}
    C = {(bi, bj): np.zeros((r, r)) for bi, bj in my_blocks}

    row_of = dist._row_of()   # (l, m): row slice of in-gblock row, per column
    col_of = dist._column_of()

    for k in range(n):
        gk = k % l
        tag_b = 2 * k
        tag_a = 2 * k + 1

        # ---- B pivot row, vertical within each column -------------------
        b_root = int(row_of[gk, J])   # grid row of the owner in my column
        b_pool: dict[int, np.ndarray] = {}
        if b_root == I:
            # I own b_(k, j) for my columns; broadcast down my grid column.
            payload = np.stack([B[(k, j)] for j in my_cols]) if my_cols else np.empty((0, r, r))
            for K in range(m):
                if K != I:
                    comm.send(payload, K * m + J, tag=tag_b)
            for idx, j in enumerate(my_cols):
                b_pool[j] = payload[idx]
        else:
            received = comm.recv(b_root * m + J, tag=tag_b)
            for idx, j in enumerate(my_cols):
                b_pool[j] = received[idx]

        # ---- A pivot column, horizontal across columns ------------------
        Jk = int(col_of[gk])          # grid column owning the pivot column
        a_pool: dict[int, np.ndarray] = {}
        if J == Jk:
            # I own a_(i, k) for my rows; serve every overlapping rectangle.
            for i in my_rows:
                a_pool[i] = A[(i, k)]
            for L in range(m):
                if L == Jk:
                    continue
                for K in range(m):
                    if h4[I, Jk, K, L] <= 0:
                        continue
                    rows_needed = [
                        i for i in my_rows if int(row_of[i % l, L]) == K
                    ]
                    payload = (
                        np.stack([A[(i, k)] for i in rows_needed])
                        if rows_needed else np.empty((0, r, r))
                    )
                    comm.send((rows_needed, payload), K * m + L, tag=tag_a)
        else:
            for K in range(m):
                if h4[K, Jk, I, J] <= 0:
                    continue
                rows_in, payload = comm.recv(K * m + Jk, tag=tag_a)
                for idx, i in enumerate(rows_in):
                    a_pool[i] = payload[idx]

        # ---- update every owned C block ---------------------------------
        for (bi, bj) in my_blocks:
            C[(bi, bj)] += a_pool[bi] @ b_pool[bj]
        compute(float(len(my_blocks)))

    return C
