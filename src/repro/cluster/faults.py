"""Fault-injection schedules.

The paper names resource failures as the second HNOC challenge and points at
FT-MPI; its conclusion envisions a library combining HMPI's heterogeneity
support with fault tolerance.  This module provides the ingredient the
simulator needs: a declarative schedule of machine deaths that can be applied
to a cluster, plus helpers to build common scenarios.

A failed machine makes every rank placed on it raise
:class:`~repro.util.errors.MachineFailure` the next time it computes or
communicates past the failure time; the HMPI runtime's recovery hooks (see
:mod:`repro.core.runtime`) can then rebuild a group without the dead machine.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..util.errors import ClusterError
from ..util.rng import make_rng
from .network import Cluster

__all__ = ["FaultSchedule", "inject_faults", "random_fault_schedule"]


class FaultSchedule:
    """Mapping from machine name to the virtual time it fails."""

    def __init__(self, failures: Mapping[str, float] | None = None):
        self._failures: dict[str, float] = {}
        if failures:
            for name, t in failures.items():
                self.add(name, t)

    def add(self, machine: str, fail_at: float) -> None:
        """Schedule ``machine`` to die at virtual time ``fail_at``."""
        if fail_at < 0:
            raise ClusterError(f"fail_at must be >= 0, got {fail_at}")
        self._failures[machine] = fail_at

    def fail_time(self, machine: str) -> float | None:
        """The scheduled failure time of ``machine``, or None."""
        return self._failures.get(machine)

    def __len__(self) -> int:
        return len(self._failures)

    def items(self):
        return self._failures.items()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}@{v:g}" for k, v in sorted(self._failures.items()))
        return f"FaultSchedule({inner})"


def inject_faults(cluster: Cluster, schedule: FaultSchedule) -> Cluster:
    """Apply ``schedule`` to ``cluster`` in place and return it.

    Machines named in the schedule get their ``fail_at`` set; others are
    untouched.  Unknown machine names raise, to catch typos in experiment
    configuration early.
    """
    for name, t in schedule.items():
        cluster.machine(name).fail_at = t
    return cluster


def random_fault_schedule(
    cluster: Cluster,
    n_failures: int,
    horizon: float,
    seed: int = 0,
    spare: frozenset[str] = frozenset(),
) -> FaultSchedule:
    """Draw ``n_failures`` distinct machines to fail before ``horizon``.

    Machines in ``spare`` (e.g. the host machine) are never chosen.
    Deterministic given ``seed``.
    """
    candidates = [m.name for m in cluster.machines if m.name not in spare]
    if n_failures > len(candidates):
        raise ClusterError(
            f"cannot fail {n_failures} machines; only {len(candidates)} candidates"
        )
    rng = make_rng(seed)
    chosen = rng.choice(len(candidates), size=n_failures, replace=False)
    schedule = FaultSchedule()
    for idx in sorted(int(i) for i in chosen):
        schedule.add(candidates[idx], float(rng.uniform(0.0, horizon)))
    return schedule
