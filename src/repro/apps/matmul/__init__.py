"""Parallel matrix multiplication: the paper's regular application (Section 4)."""

from .algorithm import assemble_matrix, matmul_algorithm, matrix_block, reference_product
from .distribution import (
    BlockDistribution,
    heights_tensor,
    heterogeneous_distribution,
    homogeneous_distribution,
    partition_generalized_block,
    proportional_partition,
)
from .drivers import (
    MatmulRunResult,
    candidate_block_sizes,
    run_matmul_hmpi,
    run_matmul_mpi,
    speed_grid,
)
from .model import MM_MODEL_SOURCE, bind_matmul_model, make_get_processor, matmul_model

__all__ = [
    "BlockDistribution",
    "proportional_partition",
    "partition_generalized_block",
    "heights_tensor",
    "homogeneous_distribution",
    "heterogeneous_distribution",
    "matrix_block",
    "assemble_matrix",
    "reference_product",
    "matmul_algorithm",
    "MM_MODEL_SOURCE",
    "matmul_model",
    "bind_matmul_model",
    "make_get_processor",
    "MatmulRunResult",
    "run_matmul_mpi",
    "run_matmul_hmpi",
    "speed_grid",
    "candidate_block_sizes",
]
