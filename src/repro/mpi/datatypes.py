"""Datatypes and payload sizing for the simulated MPI.

The substrate follows the mpi4py convention the HPC-Python guides teach:
one set of operations that handles NumPy arrays natively (near-C "buffer"
semantics: the array is copied at send time, its exact ``nbytes`` is
charged to the link) and generic Python objects via pickling (the pickled
length is charged).  The :class:`Datatype` constants exist so performance
models and applications can speak the paper's language
(``dep[I][L] * sizeof(double)``).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "Datatype",
    "DOUBLE",
    "FLOAT",
    "INT",
    "LONG",
    "BYTE",
    "CHAR",
    "sizeof",
    "encode_payload",
    "decode_payload",
]


@dataclass(frozen=True)
class Datatype:
    """An elemental MPI datatype: a name and a size in bytes."""

    name: str
    size: int

    def __mul__(self, count: int) -> int:
        """``DOUBLE * n`` — total bytes of ``n`` elements."""
        return self.size * int(count)

    __rmul__ = __mul__


DOUBLE = Datatype("MPI_DOUBLE", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
INT = Datatype("MPI_INT", 4)
LONG = Datatype("MPI_LONG", 8)
BYTE = Datatype("MPI_BYTE", 1)
CHAR = Datatype("MPI_CHAR", 1)


def sizeof(dtype: Datatype | str) -> int:
    """Byte size of a datatype, accepting ``"double"``-style C names too.

    This is the ``sizeof`` the PMDL exposes to performance models.
    """
    if isinstance(dtype, Datatype):
        return dtype.size
    table = {
        "double": 8,
        "float": 4,
        "int": 4,
        "long": 8,
        "char": 1,
        "byte": 1,
        "short": 2,
    }
    try:
        return table[dtype.lower()]
    except KeyError:
        raise KeyError(f"unknown C type name {dtype!r}") from None


# ----------------------------------------------------------------------
# payload encoding — eager-protocol copy semantics
# ----------------------------------------------------------------------

class _ArrayPayload:
    """A sent NumPy array: copied eagerly, sized by its raw buffer."""

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray):
        # Copy at send time so the sender may reuse its buffer immediately
        # (standard-mode eager send semantics).
        self.array = np.array(array, copy=True)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def decode(self) -> np.ndarray:
        return self.array


class _PicklePayload:
    """A sent generic object: pickled once for both sizing and isolation."""

    __slots__ = ("blob",)

    def __init__(self, obj: Any):
        self.blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)

    @property
    def nbytes(self) -> int:
        return len(self.blob)

    def decode(self) -> Any:
        return pickle.loads(self.blob)


def encode_payload(obj: Any, nbytes: int | None = None) -> tuple[Any, int]:
    """Snapshot ``obj`` for transmission; return ``(payload, nbytes)``.

    ``nbytes`` overrides the measured size — applications that send small
    Python stand-ins for conceptually larger buffers (e.g. a workload
    descriptor standing for a matrix block) use it to charge the link with
    the modelled message size.
    """
    if isinstance(obj, np.ndarray):
        payload: Any = _ArrayPayload(obj)
        measured = payload.nbytes
    else:
        payload = _PicklePayload(obj)
        measured = payload.nbytes
    return payload, (measured if nbytes is None else int(nbytes))


def decode_payload(payload: Any) -> Any:
    """Materialise a payload snapshot on the receiving side."""
    return payload.decode()
