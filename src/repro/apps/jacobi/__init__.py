"""Heterogeneous Jacobi iteration — a third application beyond the paper.

The paper's reference [6] (Kalinov & Lastovetsky) is about heterogeneous
distribution of computations for *linear algebra* problems; this package
applies the HMPI machinery to the classic representative: a 2-D heat
(Jacobi) iteration with a 1-D row-panel decomposition.  Panels are sized
proportionally to processor speeds; neighbours exchange one halo row per
iteration.  It exercises a different model shape than EM3D (nearest-
neighbour chain instead of a general graph) and than MM (1-D instead of
2-D decomposition).
"""

from .ft import JacobiFTResult, run_jacobi_ft
from .model import JACOBI_MODEL_SOURCE, bind_jacobi_model, jacobi_model
from .solver import (
    JacobiRunResult,
    jacobi_reference,
    partition_rows,
    run_jacobi_hmpi,
    run_jacobi_mpi,
)

__all__ = [
    "JACOBI_MODEL_SOURCE",
    "jacobi_model",
    "bind_jacobi_model",
    "partition_rows",
    "jacobi_reference",
    "run_jacobi_mpi",
    "run_jacobi_hmpi",
    "run_jacobi_ft",
    "JacobiRunResult",
    "JacobiFTResult",
]
