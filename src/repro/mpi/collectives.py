"""Collective-communication algorithms over the point-to-point layer.

Every collective is built from the substrate's sends/receives, so virtual
time accrues exactly as the underlying message pattern dictates — a
broadcast over a binomial tree on a heterogeneous network really does cost
the critical path through the tree's links.

Algorithms (the classic choices, all deterministic):

============  ==================================================
barrier       dissemination (ceil(log2 p) rounds)
bcast         binomial tree rooted at ``root``
reduce        mirrored binomial tree (combine on the way up)
allreduce     reduce to rank 0 + binomial bcast
gather(v)     linear into ``root`` (rank order)
scatter(v)    linear from ``root``
allgather     ring (p-1 steps)
alltoall      rotation schedule (p-1 steps, pairwise balanced)
scan          linear chain (inclusive prefix)
exscan        linear chain (exclusive prefix)
============  ==================================================

Each invocation draws a fresh internal tag from its communicator so that
back-to-back collectives can never cross-match even under unusual
interleavings.  All ranks of a communicator must call the same collectives
in the same order (the MPI rule), which keeps those tag sequences aligned.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..util.errors import MPICommError
from .ops import Op

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .communicator import Comm

__all__ = [
    "barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
    "allgather", "alltoall", "scan", "exscan", "reduce_scatter_block",
]


def _check_root(comm: "Comm", root: int) -> None:
    if not 0 <= root < comm.size:
        raise MPICommError(f"root {root} out of range for communicator size {comm.size}")


def barrier(comm: "Comm") -> None:
    """Dissemination barrier: after return, every rank's clock is >= the
    virtual time at which the last rank entered (up to message latencies)."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        comm._send_internal(None, dst, tag, nbytes=1)
        comm._recv_internal(src, tag)
        k *= 2


def bcast(comm: "Comm", obj: Any, root: int = 0, nbytes: int | None = None,
          algorithm: str = "binomial") -> Any:
    """Broadcast; returns the root's object on every rank.

    ``algorithm`` selects the message pattern — the right choice depends
    on the network's port model:

    - ``"binomial"`` (default): log2(p) rounds; the classic compromise.
    - ``"flat"``: the root sends to everyone directly.  Optimal on a
      contention-free switched network (distinct pairs transfer in
      parallel), poor under the single-port model (the root serialises
      p-1 transfers).
    - ``"chain"``: rank-order pipeline; p-1 sequential hops.  The
      fewest sends per node, useful under single-port when combined with
      segmentation; here mostly a teaching baseline.
    """
    if algorithm == "flat":
        return _bcast_flat(comm, obj, root, nbytes)
    if algorithm == "chain":
        return _bcast_chain(comm, obj, root, nbytes)
    if algorithm != "binomial":
        raise MPICommError(f"unknown bcast algorithm {algorithm!r}")
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size  # virtual rank: root becomes 0
    # Receive phase: every non-root receives exactly once, from the peer
    # that differs in its lowest set bit.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (rank - mask) % size
            obj, _ = comm._recv_internal(parent, tag)
            break
        mask <<= 1
    # Send phase: forward to peers at decreasing distances.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            comm._send_internal(obj, (rank + mask) % size, tag, nbytes=nbytes)
        mask >>= 1
    return obj


def _bcast_flat(comm: "Comm", obj: Any, root: int, nbytes: int | None) -> Any:
    """Root sends to every other rank directly."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.size == 1:
        return obj
    if comm.rank == root:
        for r in range(comm.size):
            if r != root:
                comm._send_internal(obj, r, tag, nbytes=nbytes)
        return obj
    value, _ = comm._recv_internal(root, tag)
    return value


def _bcast_chain(comm: "Comm", obj: Any, root: int, nbytes: int | None) -> Any:
    """Pipeline along virtual rank order rooted at ``root``."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size
    if vrank != 0:
        obj, _ = comm._recv_internal((rank - 1) % size, tag)
    if vrank != size - 1:
        comm._send_internal(obj, (rank + 1) % size, tag, nbytes=nbytes)
    return obj


def reduce(comm: "Comm", obj: Any, op: Op, root: int = 0) -> Any:
    """Binomial-tree reduction toward ``root``; returns the result at root,
    None elsewhere."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return obj
    vrank = (rank - root) % size
    acc = obj
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            comm._send_internal(acc, parent, tag)
            break
        child_v = vrank | mask
        if child_v < size:
            child_val, _ = comm._recv_internal((child_v + root) % size, tag)
            acc = op(acc, child_val)
        mask <<= 1
    return acc if rank == root else None


def allreduce(comm: "Comm", obj: Any, op: Op) -> Any:
    """Reduce to rank 0, then broadcast the result to everyone."""
    partial = reduce(comm, obj, op, root=0)
    return bcast(comm, partial, root=0)


def gather(comm: "Comm", obj: Any, root: int = 0) -> list[Any] | None:
    """Linear gather; root returns the list indexed by rank, others None."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = obj
        for r in range(comm.size):
            if r != root:
                out[r], _ = comm._recv_internal(r, tag)
        return out
    comm._send_internal(obj, root, tag)
    return None


def scatter(comm: "Comm", objs: list[Any] | None, root: int = 0) -> Any:
    """Linear scatter; rank r receives ``objs[r]`` from root."""
    _check_root(comm, root)
    tag = comm._next_coll_tag()
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise MPICommError(
                f"scatter at root needs a list of length {comm.size}"
            )
        for r in range(comm.size):
            if r != root:
                comm._send_internal(objs[r], r, tag)
        return objs[root]
    value, _ = comm._recv_internal(root, tag)
    return value


def allgather(comm: "Comm", obj: Any) -> list[Any]:
    """Ring allgather: p-1 steps, each forwarding the newest block."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    out: list[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_index = rank
    for _ in range(size - 1):
        comm._send_internal((carry_index, out[carry_index]), right, tag)
        (recv_index, value), _ = comm._recv_internal(left, tag)
        out[recv_index] = value
        carry_index = recv_index
    return out


def alltoall(comm: "Comm", objs: list[Any]) -> list[Any]:
    """Rotation-schedule personalized all-to-all.

    At step k each rank sends to ``(rank+k) % p`` and receives from
    ``(rank-k) % p``, which pairs every rank with every other exactly once
    and keeps the pattern contention-balanced.
    """
    size, rank = comm.size, comm.rank
    if objs is None or len(objs) != size:
        raise MPICommError(f"alltoall needs a list of length {size}")
    tag = comm._next_coll_tag()
    out: list[Any] = [None] * size
    out[rank] = objs[rank]
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        comm._send_internal(objs[dst], dst, tag)
        out[src], _ = comm._recv_internal(src, tag)
    return out


def scan(comm: "Comm", obj: Any, op: Op) -> Any:
    """Inclusive prefix reduction along the rank order (linear chain)."""
    tag = comm._next_coll_tag()
    acc = obj
    if comm.rank > 0:
        prev, _ = comm._recv_internal(comm.rank - 1, tag)
        acc = op(prev, acc)
    if comm.rank < comm.size - 1:
        comm._send_internal(acc, comm.rank + 1, tag)
    return acc


def exscan(comm: "Comm", obj: Any, op: Op) -> Any:
    """Exclusive prefix reduction; rank 0 receives None (MPI leaves it
    undefined there)."""
    tag = comm._next_coll_tag()
    prev: Any = None
    if comm.rank > 0:
        prev, _ = comm._recv_internal(comm.rank - 1, tag)
    if comm.rank < comm.size - 1:
        here = obj if prev is None else op(prev, obj)
        comm._send_internal(here, comm.rank + 1, tag)
    return prev


def reduce_scatter_block(comm: "Comm", objs: list[Any], op: Op) -> Any:
    """Reduce ``objs`` elementwise across ranks, rank r keeping element r.

    Implemented as reduce-to-0 of the whole list followed by a scatter —
    simple and adequate for the message volumes our applications use.
    """
    size = comm.size
    if objs is None or len(objs) != size:
        raise MPICommError(f"reduce_scatter_block needs a list of length {size}")
    combined = reduce(comm, objs, Op(op.name, lambda a, b, _op=op: [_op(x, y) for x, y in zip(a, b)]), root=0)
    return scatter(comm, combined, root=0)
