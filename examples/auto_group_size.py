#!/usr/bin/env python3
"""Automatic group sizing + execution Gantt charts.

Extension beyond the paper (in the direction of the authors' later
HeteroMPI work): the runtime chooses not only *which* machines execute an
algorithm but *how many*, by sweeping candidate group sizes with the
Timeof machinery.  An Amdahl-style workload (divisible work + a serial
combine at the root) makes the trade-off visible, and the built-in tracer
renders what actually happened on each machine.

Run:  python examples/auto_group_size.py
"""

from repro.cluster import paper_network
from repro.core import run_hmpi
from repro.core.autotune import auto_create, tune_group_size
from repro.mpi import Tracer
from repro.perfmodel import CallableModel
from repro.util.gantt import render_gantt

TOTAL_WORK = 900.0
COMBINE_COST = 20.0       # root work per member's partial result
PARTIAL_BYTES = 64 * 1024


def family(p):
    def node_volume(i):
        base = TOTAL_WORK / p
        return base + (COMBINE_COST * (p - 1) if i == 0 else 0.0)

    return CallableModel(
        p,
        node_volume=node_volume,
        link_volume=lambda s, d: float(PARTIAL_BYTES) if d == 0 else 0.0,
        name=f"amdahl-{p}",
    )


def app(hmpi):
    if hmpi.is_host():
        sweep = tune_group_size(hmpi, family, range(1, 10))
        predictions = dict(sorted(sweep.predictions.items()))
    else:
        predictions = None

    gid, best_p = auto_create(hmpi, family, range(1, 10))
    if gid.is_member:
        comm = gid.comm
        comm.barrier()
        if comm.rank != 0:
            comm.send(b"partial", 0, tag=0, nbytes=PARTIAL_BYTES)
        hmpi.compute(TOTAL_WORK / best_p, gid.my_concurrency)
        if comm.rank == 0:
            for src in range(1, comm.size):
                comm.recv(src, tag=0)
            hmpi.compute(COMBINE_COST * (best_p - 1), gid.my_concurrency)
        comm.barrier()
        hmpi.group_free(gid)
    return predictions, best_p, gid.world_ranks


def main():
    tracer = Tracer()
    result = run_hmpi(app, paper_network(), tracer=tracer)
    predictions, best_p, ranks = result.results[0]

    print("predicted time by group size:")
    for p, t in predictions.items():
        marker = "  <-- chosen" if p == best_p else ""
        print(f"  p = {p}: {t:8.4f} s{marker}")
    print(f"\nauto_create built a {best_p}-process group on world ranks {ranks}")
    print("\nexecution Gantt (virtual time):")
    print(render_gantt(tracer, width=64))


if __name__ == "__main__":
    main()
